package model

import (
	"fmt"
	"sync"

	"byzshield/internal/data"
)

// ConvNet is a small 1-D convolutional network: a valid-padding
// convolution over the feature vector (treated as a length-d signal),
// ReLU, then a dense softmax classifier. It is the closest pure-Go
// analogue of the paper's convolutional workload (ResNet-18) and
// exercises a deeper, non-linear gradient path than the MLP.
//
// Flat parameter layout:
//
//	[filters (numFilters × kernel) | filter biases (numFilters) |
//	 dense W (classes × numFilters·outLen) | dense b (classes)]
//
// with outLen = dim − kernel + 1.
type ConvNet struct {
	dim        int
	kernel     int
	numFilters int
	classes    int
	scratch    sync.Pool
}

// convScratch is one call's forward/backward working set.
type convScratch struct {
	pre   []float64
	act   []float64
	probs []float64
	delta []float64
	dAct  []float64
}

// getScratch returns a pooled working set sized for the network.
func (c *ConvNet) getScratch() *convScratch {
	if s, _ := c.scratch.Get().(*convScratch); s != nil {
		return s
	}
	actLen := c.numFilters * c.outLen()
	return &convScratch{
		pre:   make([]float64, actLen),
		act:   make([]float64, actLen),
		probs: make([]float64, c.classes),
		delta: make([]float64, c.classes),
		dAct:  make([]float64, actLen),
	}
}

// NewConvNet builds the network. Requires kernel ≤ dim, numFilters ≥ 1
// and classes ≥ 2.
func NewConvNet(dim, kernel, numFilters, classes int) (*ConvNet, error) {
	if dim < 1 || kernel < 1 || kernel > dim {
		return nil, fmt.Errorf("model: convnet needs 1 <= kernel <= dim, got kernel=%d dim=%d", kernel, dim)
	}
	if numFilters < 1 {
		return nil, fmt.Errorf("model: convnet needs numFilters >= 1, got %d", numFilters)
	}
	if classes < 2 {
		return nil, fmt.Errorf("model: convnet needs classes >= 2, got %d", classes)
	}
	return &ConvNet{dim: dim, kernel: kernel, numFilters: numFilters, classes: classes}, nil
}

// Name implements Model.
func (c *ConvNet) Name() string {
	return fmt.Sprintf("convnet(d=%d,k=%d,f=%d,c=%d)", c.dim, c.kernel, c.numFilters, c.classes)
}

// outLen is the convolution output length per filter.
func (c *ConvNet) outLen() int { return c.dim - c.kernel + 1 }

// NumParams implements Model.
func (c *ConvNet) NumParams() int {
	conv := c.numFilters*c.kernel + c.numFilters
	dense := c.classes*c.numFilters*c.outLen() + c.classes
	return conv + dense
}

// InputDim implements Model.
func (c *ConvNet) InputDim() int { return c.dim }

// Classes implements Model.
func (c *ConvNet) Classes() int { return c.classes }

// paramViews slices the flat vector into the four blocks.
func (c *ConvNet) paramViews(params []float64) (filters, fBias, denseW, denseB []float64) {
	ol := c.outLen()
	p := 0
	filters = params[p : p+c.numFilters*c.kernel]
	p += c.numFilters * c.kernel
	fBias = params[p : p+c.numFilters]
	p += c.numFilters
	denseW = params[p : p+c.classes*c.numFilters*ol]
	p += c.classes * c.numFilters * ol
	denseB = params[p : p+c.classes]
	return
}

// forward computes conv pre-activations, post-ReLU activations and the
// softmax probabilities for a single sample into the scratch buffers.
func (c *ConvNet) forward(params, x []float64, s *convScratch) (pre, act, probs []float64) {
	filters, fBias, denseW, denseB := c.paramViews(params)
	ol := c.outLen()
	pre, act, probs = s.pre, s.act, s.probs
	for f := 0; f < c.numFilters; f++ {
		w := filters[f*c.kernel : (f+1)*c.kernel]
		for o := 0; o < ol; o++ {
			var v float64
			for k := 0; k < c.kernel; k++ {
				v += w[k] * x[o+k]
			}
			v += fBias[f]
			pre[f*ol+o] = v
			if v > 0 {
				act[f*ol+o] = v
			} else {
				act[f*ol+o] = 0
			}
		}
	}
	for cls := 0; cls < c.classes; cls++ {
		row := denseW[cls*len(act) : (cls+1)*len(act)]
		var v float64
		for i, a := range act {
			v += row[i] * a
		}
		probs[cls] = v + denseB[cls]
	}
	softmaxInPlace(probs)
	return pre, act, probs
}

// Loss implements Model.
func (c *ConvNet) Loss(params []float64, ds *data.Dataset, idx []int) float64 {
	checkShapes(c, params, ds)
	if len(idx) == 0 {
		return 0
	}
	s := c.getScratch()
	defer c.scratch.Put(s)
	var total float64
	for _, i := range idx {
		_, _, probs := c.forward(params, ds.X[i], s)
		p := probs[ds.Y[i]]
		if p < 1e-300 {
			p = 1e-300
		}
		total += -ln(p)
	}
	return total / float64(len(idx))
}

// SumGradient implements Model via backprop through the dense layer,
// ReLU mask, and convolution.
func (c *ConvNet) SumGradient(params []float64, ds *data.Dataset, idx []int, out []float64) {
	checkShapes(c, params, ds)
	if len(out) != c.NumParams() {
		panic(fmt.Sprintf("model: gradient buffer %d, want %d", len(out), c.NumParams()))
	}
	_, _, denseW, _ := c.paramViews(params)
	gFilters, gFBias, gDenseW, gDenseB := c.paramViews(out)
	ol := c.outLen()
	actLen := c.numFilters * ol
	s := c.getScratch()
	defer c.scratch.Put(s)
	for _, i := range idx {
		x := ds.X[i]
		pre, act, probs := c.forward(params, x, s)
		// Output delta: p − onehot(y).
		delta := s.delta
		copy(delta, probs)
		delta[ds.Y[i]] -= 1
		// Dense layer gradients + backprop into activations.
		dAct := s.dAct
		clear(dAct)
		for cls := 0; cls < c.classes; cls++ {
			dv := delta[cls]
			if dv == 0 {
				continue
			}
			row := denseW[cls*actLen : (cls+1)*actLen]
			gRow := gDenseW[cls*actLen : (cls+1)*actLen]
			for j, a := range act {
				gRow[j] += dv * a
				dAct[j] += dv * row[j]
			}
			gDenseB[cls] += dv
		}
		// ReLU mask.
		for j := range dAct {
			if pre[j] <= 0 {
				dAct[j] = 0
			}
		}
		// Convolution gradients.
		for f := 0; f < c.numFilters; f++ {
			gW := gFilters[f*c.kernel : (f+1)*c.kernel]
			for o := 0; o < ol; o++ {
				dv := dAct[f*ol+o]
				if dv == 0 {
					continue
				}
				for k := 0; k < c.kernel; k++ {
					gW[k] += dv * x[o+k]
				}
				gFBias[f] += dv
			}
		}
	}
}

// Predict implements Model.
func (c *ConvNet) Predict(params []float64, x []float64) int {
	s := c.getScratch()
	defer c.scratch.Put(s)
	_, _, probs := c.forward(params, x, s)
	best := 0
	for cls := 1; cls < c.classes; cls++ {
		if probs[cls] > probs[best] {
			best = cls
		}
	}
	return best
}
