package model

import (
	"fmt"
	"sync"

	"byzshield/internal/data"
	"byzshield/internal/linalg"
)

// ConvNet is a small 1-D convolutional network: a valid-padding
// convolution over the feature vector (treated as a length-d signal),
// ReLU, then a dense softmax classifier. It is the closest pure-Go
// analogue of the paper's convolutional workload (ResNet-18) and
// exercises a deeper, non-linear gradient path than the MLP.
//
// Flat parameter layout:
//
//	[filters (numFilters × kernel) | filter biases (numFilters) |
//	 dense W (classes × numFilters·outLen) | dense b (classes)]
//
// with outLen = dim − kernel + 1.
//
// The forward/backward core is generic over the precision tier
// (float64 and float32 instantiations share one code path), so the
// network implements both Model and Model32 — it is the model the
// reduced-precision benchmarks drive at large dimension.
type ConvNet struct {
	dim        int
	kernel     int
	numFilters int
	classes    int
	scratch    sync.Pool
	scratch32  sync.Pool
}

// convScratchT is one call's forward/backward working set at either
// precision width.
type convScratchT[T linalg.Float] struct {
	pre   []T
	act   []T
	probs []T
	delta []T
	dAct  []T
}

// convScratch is the float64 working set (the historical name).
type convScratch = convScratchT[float64]

// newConvScratch allocates a working set sized for the network.
func newConvScratch[T linalg.Float](c *ConvNet) *convScratchT[T] {
	actLen := c.numFilters * c.outLen()
	return &convScratchT[T]{
		pre:   make([]T, actLen),
		act:   make([]T, actLen),
		probs: make([]T, c.classes),
		delta: make([]T, c.classes),
		dAct:  make([]T, actLen),
	}
}

// getScratch returns a pooled float64 working set.
func (c *ConvNet) getScratch() *convScratch {
	if s, _ := c.scratch.Get().(*convScratch); s != nil {
		return s
	}
	return newConvScratch[float64](c)
}

// getScratch32 returns a pooled float32 working set.
func (c *ConvNet) getScratch32() *convScratchT[float32] {
	if s, _ := c.scratch32.Get().(*convScratchT[float32]); s != nil {
		return s
	}
	return newConvScratch[float32](c)
}

// NewConvNet builds the network. Requires kernel ≤ dim, numFilters ≥ 1
// and classes ≥ 2.
func NewConvNet(dim, kernel, numFilters, classes int) (*ConvNet, error) {
	if dim < 1 || kernel < 1 || kernel > dim {
		return nil, fmt.Errorf("model: convnet needs 1 <= kernel <= dim, got kernel=%d dim=%d", kernel, dim)
	}
	if numFilters < 1 {
		return nil, fmt.Errorf("model: convnet needs numFilters >= 1, got %d", numFilters)
	}
	if classes < 2 {
		return nil, fmt.Errorf("model: convnet needs classes >= 2, got %d", classes)
	}
	return &ConvNet{dim: dim, kernel: kernel, numFilters: numFilters, classes: classes}, nil
}

// Name implements Model.
func (c *ConvNet) Name() string {
	return fmt.Sprintf("convnet(d=%d,k=%d,f=%d,c=%d)", c.dim, c.kernel, c.numFilters, c.classes)
}

// outLen is the convolution output length per filter.
func (c *ConvNet) outLen() int { return c.dim - c.kernel + 1 }

// NumParams implements Model.
func (c *ConvNet) NumParams() int {
	conv := c.numFilters*c.kernel + c.numFilters
	dense := c.classes*c.numFilters*c.outLen() + c.classes
	return conv + dense
}

// InputDim implements Model.
func (c *ConvNet) InputDim() int { return c.dim }

// Classes implements Model.
func (c *ConvNet) Classes() int { return c.classes }

// convViewsT slices the flat vector into the four blocks.
func convViewsT[T linalg.Float](c *ConvNet, params []T) (filters, fBias, denseW, denseB []T) {
	ol := c.outLen()
	p := 0
	filters = params[p : p+c.numFilters*c.kernel]
	p += c.numFilters * c.kernel
	fBias = params[p : p+c.numFilters]
	p += c.numFilters
	denseW = params[p : p+c.classes*c.numFilters*ol]
	p += c.classes * c.numFilters * ol
	denseB = params[p : p+c.classes]
	return
}

// convForwardT computes conv pre-activations, post-ReLU activations
// and the softmax probabilities for a single sample into the scratch
// buffers.
func convForwardT[T linalg.Float](c *ConvNet, params, x []T, s *convScratchT[T]) (pre, act, probs []T) {
	filters, fBias, denseW, denseB := convViewsT(c, params)
	ol := c.outLen()
	pre, act, probs = s.pre, s.act, s.probs
	for f := 0; f < c.numFilters; f++ {
		w := filters[f*c.kernel : (f+1)*c.kernel]
		for o := 0; o < ol; o++ {
			var v T
			for k := 0; k < c.kernel; k++ {
				v += w[k] * x[o+k]
			}
			v += fBias[f]
			pre[f*ol+o] = v
			if v > 0 {
				act[f*ol+o] = v
			} else {
				act[f*ol+o] = 0
			}
		}
	}
	for cls := 0; cls < c.classes; cls++ {
		row := denseW[cls*len(act) : (cls+1)*len(act)]
		var v T
		for i, a := range act {
			v += row[i] * a
		}
		probs[cls] = v + denseB[cls]
	}
	softmaxT(probs)
	return pre, act, probs
}

// convLossT is the width-generic mean cross-entropy loss.
func convLossT[T linalg.Float](c *ConvNet, params []T, x [][]T, y, idx []int, s *convScratchT[T]) float64 {
	var total float64
	for _, i := range idx {
		_, _, probs := convForwardT(c, params, x[i], s)
		total += nllClamp(probs[y[i]])
	}
	return total / float64(len(idx))
}

// convGradT is the width-generic summed gradient via backprop through
// the dense layer, ReLU mask, and convolution.
func convGradT[T linalg.Float](c *ConvNet, params []T, x [][]T, y, idx []int, out []T, s *convScratchT[T]) {
	_, _, denseW, _ := convViewsT(c, params)
	gFilters, gFBias, gDenseW, gDenseB := convViewsT(c, out)
	ol := c.outLen()
	actLen := c.numFilters * ol
	for _, i := range idx {
		xi := x[i]
		pre, act, probs := convForwardT(c, params, xi, s)
		// Output delta: p − onehot(y).
		delta := s.delta
		copy(delta, probs)
		delta[y[i]] -= 1
		// Dense layer gradients + backprop into activations.
		dAct := s.dAct
		clear(dAct)
		for cls := 0; cls < c.classes; cls++ {
			dv := delta[cls]
			if dv == 0 {
				continue
			}
			row := denseW[cls*actLen : (cls+1)*actLen]
			gRow := gDenseW[cls*actLen : (cls+1)*actLen]
			for j, a := range act {
				gRow[j] += dv * a
				dAct[j] += dv * row[j]
			}
			gDenseB[cls] += dv
		}
		// ReLU mask.
		for j := range dAct {
			if pre[j] <= 0 {
				dAct[j] = 0
			}
		}
		// Convolution gradients.
		for f := 0; f < c.numFilters; f++ {
			gW := gFilters[f*c.kernel : (f+1)*c.kernel]
			for o := 0; o < ol; o++ {
				dv := dAct[f*ol+o]
				if dv == 0 {
					continue
				}
				for k := 0; k < c.kernel; k++ {
					gW[k] += dv * xi[o+k]
				}
				gFBias[f] += dv
			}
		}
	}
}

// Loss implements Model.
func (c *ConvNet) Loss(params []float64, ds *data.Dataset, idx []int) float64 {
	checkShapes(c, params, ds)
	if len(idx) == 0 {
		return 0
	}
	s := c.getScratch()
	defer c.scratch.Put(s)
	return convLossT(c, params, ds.X, ds.Y, idx, s)
}

// SumGradient implements Model via backprop through the dense layer,
// ReLU mask, and convolution.
func (c *ConvNet) SumGradient(params []float64, ds *data.Dataset, idx []int, out []float64) {
	checkShapes(c, params, ds)
	checkGradLen(c, len(out))
	s := c.getScratch()
	defer c.scratch.Put(s)
	convGradT(c, params, ds.X, ds.Y, idx, out, s)
}

// Predict implements Model.
func (c *ConvNet) Predict(params []float64, x []float64) int {
	s := c.getScratch()
	defer c.scratch.Put(s)
	_, _, probs := convForwardT(c, params, x, s)
	return argmaxT(probs)
}

// Loss32 implements Model32.
func (c *ConvNet) Loss32(params []float32, ds *data.Dataset32, idx []int) float64 {
	checkShapes32(c, params, ds)
	if len(idx) == 0 {
		return 0
	}
	s := c.getScratch32()
	defer c.scratch32.Put(s)
	return convLossT(c, params, ds.X, ds.Y, idx, s)
}

// SumGradient32 implements Model32.
func (c *ConvNet) SumGradient32(params []float32, ds *data.Dataset32, idx []int, out []float32) {
	checkShapes32(c, params, ds)
	checkGradLen(c, len(out))
	s := c.getScratch32()
	defer c.scratch32.Put(s)
	convGradT(c, params, ds.X, ds.Y, idx, out, s)
}

// Predict32 implements Model32.
func (c *ConvNet) Predict32(params []float32, x []float32) int {
	s := c.getScratch32()
	defer c.scratch32.Put(s)
	_, _, probs := convForwardT(c, params, x, s)
	return argmaxT(probs)
}
