package model

import (
	"math"
	"testing"

	"byzshield/internal/data"
)

func smallDataset(t testing.TB, n, dim, classes int) *data.Dataset {
	t.Helper()
	tr, _, err := data.Synthetic(data.SyntheticConfig{
		Train: n, Test: 1, Dim: dim, Classes: classes, Seed: 11, ClassSep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// numericGradient computes a central-difference gradient of the MEAN
// loss and scales to the SUM convention.
func numericGradient(m Model, params []float64, ds *data.Dataset, idx []int) []float64 {
	const h = 1e-6
	grad := make([]float64, len(params))
	p := append([]float64(nil), params...)
	for i := range p {
		orig := p[i]
		p[i] = orig + h
		lp := m.Loss(p, ds, idx)
		p[i] = orig - h
		lm := m.Loss(p, ds, idx)
		p[i] = orig
		grad[i] = (lp - lm) / (2 * h) * float64(len(idx))
	}
	return grad
}

func checkGradient(t *testing.T, m Model, ds *data.Dataset, idx []int, seed int64, tol float64) {
	t.Helper()
	params := InitParams(m, seed)
	analytic := make([]float64, m.NumParams())
	m.SumGradient(params, ds, idx, analytic)
	numeric := numericGradient(m, params, ds, idx)
	var maxErr, scale float64
	for i := range analytic {
		err := math.Abs(analytic[i] - numeric[i])
		if err > maxErr {
			maxErr = err
		}
		if a := math.Abs(numeric[i]); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	if maxErr/scale > tol {
		t.Errorf("%s: max gradient error %v (relative %v)", m.Name(), maxErr, maxErr/scale)
	}
}

func TestSoftmaxGradientMatchesNumeric(t *testing.T) {
	ds := smallDataset(t, 12, 5, 3)
	m, err := NewSoftmax(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, m, ds, []int{0, 1, 2, 3, 4, 5}, 1, 1e-5)
	checkGradient(t, m, ds, []int{7}, 2, 1e-5)
}

func TestMLPGradientMatchesNumeric(t *testing.T) {
	ds := smallDataset(t, 10, 4, 3)
	m, err := NewMLP(4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, m, ds, []int{0, 1, 2, 3}, 3, 1e-4)
}

func TestMLPTwoHiddenGradient(t *testing.T) {
	ds := smallDataset(t, 8, 4, 2)
	m, err := NewMLP(4, 6, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, m, ds, []int{0, 1, 2}, 4, 1e-4)
}

func TestSoftmaxShapes(t *testing.T) {
	m, err := NewSoftmax(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() != 8*10+10 {
		t.Errorf("NumParams = %d", m.NumParams())
	}
	if m.InputDim() != 8 || m.Classes() != 10 {
		t.Error("dims wrong")
	}
	if _, err := NewSoftmax(0, 2); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewSoftmax(4, 1); err == nil {
		t.Error("1 class accepted")
	}
}

func TestMLPShapes(t *testing.T) {
	m, err := NewMLP(4, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*16 + 16 + 16*3 + 3
	if m.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", m.NumParams(), want)
	}
	if _, err := NewMLP(4, 3); err == nil {
		t.Error("no hidden layer accepted")
	}
	if _, err := NewMLP(4, 0, 3); err == nil {
		t.Error("zero-width layer accepted")
	}
	if _, err := NewMLP(4, 8, 1); err == nil {
		t.Error("single output class accepted")
	}
}

func TestGradientDeterministic(t *testing.T) {
	// The majority-vote layer requires bit-identical gradients from
	// honest replicas: same params, same indices, same result bytes.
	ds := smallDataset(t, 20, 6, 4)
	m, err := NewMLP(6, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	params := InitParams(m, 5)
	idx := []int{3, 1, 4, 1, 5} // duplicates allowed; order fixed
	g1 := make([]float64, m.NumParams())
	g2 := make([]float64, m.NumParams())
	m.SumGradient(params, ds, idx, g1)
	m.SumGradient(params, ds, idx, g2)
	for i := range g1 {
		if math.Float64bits(g1[i]) != math.Float64bits(g2[i]) {
			t.Fatalf("gradient not bit-deterministic at %d", i)
		}
	}
}

func TestSumGradientIsAdditive(t *testing.T) {
	ds := smallDataset(t, 10, 4, 3)
	m, _ := NewSoftmax(4, 3)
	params := InitParams(m, 6)
	gAll := make([]float64, m.NumParams())
	m.SumGradient(params, ds, []int{0, 1, 2, 3}, gAll)
	gParts := make([]float64, m.NumParams())
	m.SumGradient(params, ds, []int{0, 1}, gParts)
	m.SumGradient(params, ds, []int{2, 3}, gParts)
	for i := range gAll {
		if math.Abs(gAll[i]-gParts[i]) > 1e-12 {
			t.Fatalf("sum gradient not additive at %d: %v vs %v", i, gAll[i], gParts[i])
		}
	}
}

func TestTrainingReducesLossSoftmax(t *testing.T) {
	ds := smallDataset(t, 200, 6, 3)
	m, _ := NewSoftmax(6, 3)
	params := InitParams(m, 7)
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	initial := m.Loss(params, ds, idx)
	grad := make([]float64, m.NumParams())
	for step := 0; step < 100; step++ {
		for i := range grad {
			grad[i] = 0
		}
		m.SumGradient(params, ds, idx, grad)
		lr := 0.1 / float64(len(idx))
		for i := range params {
			params[i] -= lr * grad[i]
		}
	}
	final := m.Loss(params, ds, idx)
	if final >= initial {
		t.Errorf("loss did not decrease: %v -> %v", initial, final)
	}
	acc := Accuracy(m, params, ds)
	if acc < 0.8 {
		t.Errorf("training accuracy %v < 0.8 on separable data", acc)
	}
}

func TestTrainingReducesLossMLP(t *testing.T) {
	ds := smallDataset(t, 150, 5, 3)
	m, _ := NewMLP(5, 12, 3)
	params := InitParams(m, 8)
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	initial := m.Loss(params, ds, idx)
	grad := make([]float64, m.NumParams())
	for step := 0; step < 150; step++ {
		for i := range grad {
			grad[i] = 0
		}
		m.SumGradient(params, ds, idx, grad)
		lr := 0.05 / float64(len(idx))
		for i := range params {
			params[i] -= lr * grad[i]
		}
	}
	final := m.Loss(params, ds, idx)
	if final >= initial*0.7 {
		t.Errorf("MLP loss did not decrease enough: %v -> %v", initial, final)
	}
}

func TestAccuracyBounds(t *testing.T) {
	ds := smallDataset(t, 30, 4, 3)
	m, _ := NewSoftmax(4, 3)
	params := InitParams(m, 9)
	acc := Accuracy(m, params, ds)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %v outside [0,1]", acc)
	}
	empty := &data.Dataset{Classes: 3}
	if Accuracy(m, params, empty) != 0 {
		t.Error("empty dataset accuracy != 0")
	}
}

func TestInitParamsDeterministic(t *testing.T) {
	m, _ := NewSoftmax(4, 3)
	a := InitParams(m, 42)
	b := InitParams(m, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InitParams not deterministic")
		}
	}
	c := InitParams(m, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical init")
	}
}

func TestLossEmptyIndices(t *testing.T) {
	ds := smallDataset(t, 5, 4, 3)
	m, _ := NewSoftmax(4, 3)
	params := InitParams(m, 1)
	if m.Loss(params, ds, nil) != 0 {
		t.Error("empty-index loss != 0")
	}
}

func TestShapePanics(t *testing.T) {
	ds := smallDataset(t, 5, 4, 3)
	m, _ := NewSoftmax(5, 3) // wrong dim vs dataset
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	m.Loss(make([]float64, m.NumParams()), ds, []int{0})
}

func BenchmarkSoftmaxGradient(b *testing.B) {
	tr, _, err := data.Synthetic(data.SyntheticConfig{Train: 64, Test: 1, Dim: 32, Classes: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, _ := NewSoftmax(32, 10)
	params := InitParams(m, 1)
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, m.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		m.SumGradient(params, tr, idx, grad)
	}
}

func BenchmarkMLPGradient(b *testing.B) {
	tr, _, err := data.Synthetic(data.SyntheticConfig{Train: 64, Test: 1, Dim: 32, Classes: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, _ := NewMLP(32, 64, 10)
	params := InitParams(m, 1)
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, m.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		m.SumGradient(params, tr, idx, grad)
	}
}
