// Package model implements the pure-Go classification models whose
// gradients the distributed protocol trains: multinomial (softmax)
// logistic regression and a multi-layer perceptron with ReLU hidden
// layers, both with exact analytic gradients (verified against finite
// differences in the tests). The paper trains ResNet-18; these models
// substitute for it per the DESIGN.md inventory — the defense layer only
// ever sees flat gradient vectors, so any SGD-trained classifier
// exercises the same code paths.
//
// Parameters are flat []float64 vectors, which is what the parameter
// server broadcasts and the aggregation rules consume. Gradient
// computation iterates samples in caller-given order with no
// parallelism, so two honest workers computing the same file produce
// bit-identical gradients — the property the exact majority vote relies
// on.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"byzshield/internal/data"
)

// Model is a differentiable classifier over flat parameter vectors.
type Model interface {
	// NumParams returns the length of the flat parameter vector.
	NumParams() int
	// InputDim returns the expected feature dimension.
	InputDim() int
	// Classes returns the number of output classes.
	Classes() int
	// Loss returns the mean cross-entropy loss over ds[idx].
	Loss(params []float64, ds *data.Dataset, idx []int) float64
	// SumGradient adds the SUM (not mean) of per-sample loss gradients
	// over ds[idx] into out, which must have length NumParams(). The
	// file gradients g_{t,i} of the protocol are sums (Sec. 2), so the
	// sum is the primitive; callers divide by counts as needed.
	SumGradient(params []float64, ds *data.Dataset, idx []int, out []float64)
	// Predict returns the argmax class for features x.
	Predict(params []float64, x []float64) int
	// Name identifies the architecture in reports.
	Name() string
}

// InitParams returns a deterministic random initialization for m using
// scaled Gaussian entries (He-style scaling by the input dimension).
func InitParams(m Model, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	params := make([]float64, m.NumParams())
	scale := math.Sqrt(2.0 / float64(m.InputDim()+1))
	for i := range params {
		params[i] = rng.NormFloat64() * scale
	}
	return params
}

// Accuracy returns the top-1 accuracy of m with params over ds — the
// paper's principal evaluation metric.
func Accuracy(m Model, params []float64, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range ds.X {
		if m.Predict(params, x) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// softmaxInPlace converts logits to probabilities with the max-shift
// trick for numerical stability.
func softmaxInPlace(logits []float64) {
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxV)
		logits[i] = e
		sum += e
	}
	for i := range logits {
		logits[i] /= sum
	}
}

// checkShapes panics on dimension violations shared by the models.
func checkShapes(m Model, params []float64, ds *data.Dataset) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("model: %d params, want %d", len(params), m.NumParams()))
	}
	if ds.Dim() != m.InputDim() {
		panic(fmt.Sprintf("model: dataset dim %d, want %d", ds.Dim(), m.InputDim()))
	}
	if ds.Classes != m.Classes() {
		panic(fmt.Sprintf("model: dataset classes %d, want %d", ds.Classes, m.Classes()))
	}
}
