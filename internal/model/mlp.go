package model

import (
	"fmt"
	"math"
	"sync"

	"byzshield/internal/data"
)

// ln is a local alias making the loss code read like the math.
func ln(x float64) float64 { return math.Log(x) }

// MLP is a fully connected network with ReLU hidden layers and a softmax
// output, trained with cross-entropy. The flat parameter layout
// concatenates per-layer [W row-major (out × in) | b (out)] blocks.
//
// Forward/backward working buffers are pooled per call, so concurrent
// SumGradient / Loss / Predict calls from the engine's worker pool
// allocate nothing in steady state.
type MLP struct {
	dims    []int // layer widths: input, hidden..., classes
	scratch sync.Pool
}

// mlpScratch is one call's forward/backward working set: per-layer
// activation and pre-activation buffers plus two delta buffers of the
// maximum layer width.
type mlpScratch struct {
	acts    [][]float64 // acts[0] aliases the input sample
	preacts [][]float64
	delta   []float64
	delta2  []float64
}

// getScratch returns a pooled working set sized for the network.
func (m *MLP) getScratch() *mlpScratch {
	if s, _ := m.scratch.Get().(*mlpScratch); s != nil {
		return s
	}
	nLayers := len(m.dims) - 1
	maxW := 0
	for _, d := range m.dims[1:] {
		if d > maxW {
			maxW = d
		}
	}
	s := &mlpScratch{
		acts:    make([][]float64, nLayers+1),
		preacts: make([][]float64, nLayers),
		delta:   make([]float64, maxW),
		delta2:  make([]float64, maxW),
	}
	for l := 0; l < nLayers; l++ {
		s.acts[l+1] = make([]float64, m.dims[l+1])
		s.preacts[l] = make([]float64, m.dims[l+1])
	}
	return s
}

// NewMLP builds an MLP with the given layer widths. dims must have at
// least 3 entries (input, ≥1 hidden, classes) with the final entry ≥ 2.
func NewMLP(dims ...int) (*MLP, error) {
	if len(dims) < 3 {
		return nil, fmt.Errorf("model: MLP needs input, hidden..., classes; got %v", dims)
	}
	for i, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("model: MLP layer %d width %d < 1", i, d)
		}
	}
	if dims[len(dims)-1] < 2 {
		return nil, fmt.Errorf("model: MLP needs >= 2 output classes, got %d", dims[len(dims)-1])
	}
	cp := append([]int(nil), dims...)
	return &MLP{dims: cp}, nil
}

// Name implements Model.
func (m *MLP) Name() string { return fmt.Sprintf("mlp%v", m.dims) }

// NumParams implements Model.
func (m *MLP) NumParams() int {
	total := 0
	for layer := 0; layer+1 < len(m.dims); layer++ {
		total += m.dims[layer]*m.dims[layer+1] + m.dims[layer+1]
	}
	return total
}

// InputDim implements Model.
func (m *MLP) InputDim() int { return m.dims[0] }

// Classes implements Model.
func (m *MLP) Classes() int { return m.dims[len(m.dims)-1] }

// layerOffset returns the starting index of layer's [W|b] block.
func (m *MLP) layerOffset(layer int) int {
	off := 0
	for l := 0; l < layer; l++ {
		off += m.dims[l]*m.dims[l+1] + m.dims[l+1]
	}
	return off
}

// forward computes all layer activations into the scratch buffers.
// s.acts[0] is the input; s.acts[i] for i >= 1 is the post-ReLU
// activation of layer i (softmax probabilities for the final layer).
// s.preacts[i] holds layer i+1's pre-activation values (needed for the
// ReLU mask on backprop).
func (m *MLP) forward(params, x []float64, s *mlpScratch) {
	nLayers := len(m.dims) - 1
	s.acts[0] = x
	for layer := 0; layer < nLayers; layer++ {
		in := s.acts[layer]
		inDim := m.dims[layer]
		outDim := m.dims[layer+1]
		off := m.layerOffset(layer)
		w := params[off : off+inDim*outDim]
		b := params[off+inDim*outDim : off+inDim*outDim+outDim]
		pre := s.preacts[layer]
		for o := 0; o < outDim; o++ {
			row := w[o*inDim : (o+1)*inDim]
			var v float64
			for j, xv := range in {
				v += row[j] * xv
			}
			pre[o] = v + b[o]
		}
		act := s.acts[layer+1]
		copy(act, pre)
		if layer == nLayers-1 {
			softmaxInPlace(act)
		} else {
			for i, v := range act {
				if v < 0 {
					act[i] = 0
				}
			}
		}
	}
}

// Loss implements Model.
func (m *MLP) Loss(params []float64, ds *data.Dataset, idx []int) float64 {
	checkShapes(m, params, ds)
	if len(idx) == 0 {
		return 0
	}
	s := m.getScratch()
	defer m.scratch.Put(s)
	var total float64
	for _, i := range idx {
		m.forward(params, ds.X[i], s)
		p := s.acts[len(s.acts)-1][ds.Y[i]]
		if p < 1e-300 {
			p = 1e-300
		}
		total += -ln(p)
	}
	return total / float64(len(idx))
}

// SumGradient implements Model via backpropagation.
func (m *MLP) SumGradient(params []float64, ds *data.Dataset, idx []int, out []float64) {
	checkShapes(m, params, ds)
	if len(out) != m.NumParams() {
		panic(fmt.Sprintf("model: gradient buffer %d, want %d", len(out), m.NumParams()))
	}
	nLayers := len(m.dims) - 1
	s := m.getScratch()
	defer m.scratch.Put(s)
	for _, i := range idx {
		x := ds.X[i]
		m.forward(params, x, s)
		// delta at output: p − onehot(y). bufA holds the current delta,
		// bufB the next layer down's; they swap as backprop descends.
		outDim := m.dims[nLayers]
		bufA, bufB := s.delta, s.delta2
		delta := bufA[:outDim]
		copy(delta, s.acts[nLayers])
		delta[ds.Y[i]] -= 1
		for layer := nLayers - 1; layer >= 0; layer-- {
			inDim := m.dims[layer]
			oDim := m.dims[layer+1]
			off := m.layerOffset(layer)
			wGrad := out[off : off+inDim*oDim]
			bGrad := out[off+inDim*oDim : off+inDim*oDim+oDim]
			in := s.acts[layer]
			for o := 0; o < oDim; o++ {
				dv := delta[o]
				if dv == 0 {
					continue
				}
				row := wGrad[o*inDim : (o+1)*inDim]
				for j, xv := range in {
					row[j] += dv * xv
				}
				bGrad[o] += dv
			}
			if layer > 0 {
				// Propagate delta through W and the ReLU mask.
				w := params[off : off+inDim*oDim]
				newDelta := bufB[:inDim]
				clear(newDelta)
				for o := 0; o < oDim; o++ {
					dv := delta[o]
					if dv == 0 {
						continue
					}
					row := w[o*inDim : (o+1)*inDim]
					for j := range newDelta {
						newDelta[j] += dv * row[j]
					}
				}
				pre := s.preacts[layer-1]
				for j := range newDelta {
					if pre[j] <= 0 {
						newDelta[j] = 0
					}
				}
				delta = newDelta
				bufA, bufB = bufB, bufA
			}
		}
	}
}

// Predict implements Model.
func (m *MLP) Predict(params []float64, x []float64) int {
	s := m.getScratch()
	defer m.scratch.Put(s)
	m.forward(params, x, s)
	probs := s.acts[len(s.acts)-1]
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best
}
