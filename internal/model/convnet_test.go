package model

import (
	"math"
	"testing"
)

func TestConvNetShapes(t *testing.T) {
	c, err := NewConvNet(16, 3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// conv: 4*3 + 4 = 16; dense: 10*4*14 + 10 = 570; total 586.
	if c.NumParams() != 586 {
		t.Errorf("NumParams = %d, want 586", c.NumParams())
	}
	if c.InputDim() != 16 || c.Classes() != 10 {
		t.Error("dims wrong")
	}
}

func TestConvNetRejectsBadParams(t *testing.T) {
	cases := [][4]int{
		{0, 1, 1, 2}, // dim 0
		{8, 9, 1, 2}, // kernel > dim
		{8, 0, 1, 2}, // kernel 0
		{8, 3, 0, 2}, // no filters
		{8, 3, 2, 1}, // one class
	}
	for _, cse := range cases {
		if _, err := NewConvNet(cse[0], cse[1], cse[2], cse[3]); err == nil {
			t.Errorf("NewConvNet(%v) accepted", cse)
		}
	}
}

func TestConvNetGradientMatchesNumeric(t *testing.T) {
	ds := smallDataset(t, 8, 10, 3)
	c, err := NewConvNet(10, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, c, ds, []int{0, 1, 2, 3}, 13, 1e-4)
	checkGradient(t, c, ds, []int{5}, 14, 1e-4)
}

func TestConvNetGradientDeterministic(t *testing.T) {
	ds := smallDataset(t, 10, 12, 4)
	c, err := NewConvNet(12, 4, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	params := InitParams(c, 3)
	idx := []int{2, 7, 1}
	g1 := make([]float64, c.NumParams())
	g2 := make([]float64, c.NumParams())
	c.SumGradient(params, ds, idx, g1)
	c.SumGradient(params, ds, idx, g2)
	for i := range g1 {
		if math.Float64bits(g1[i]) != math.Float64bits(g2[i]) {
			t.Fatalf("gradient not bit-deterministic at %d", i)
		}
	}
}

func TestConvNetTrains(t *testing.T) {
	ds := smallDataset(t, 200, 12, 3)
	c, err := NewConvNet(12, 3, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := InitParams(c, 21)
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	initial := c.Loss(params, ds, idx)
	grad := make([]float64, c.NumParams())
	for step := 0; step < 120; step++ {
		for i := range grad {
			grad[i] = 0
		}
		c.SumGradient(params, ds, idx, grad)
		lr := 0.05 / float64(len(idx))
		for i := range params {
			params[i] -= lr * grad[i]
		}
	}
	final := c.Loss(params, ds, idx)
	if final >= initial*0.8 {
		t.Errorf("convnet loss did not decrease enough: %v -> %v", initial, final)
	}
	if acc := Accuracy(c, params, ds); acc < 0.7 {
		t.Errorf("convnet training accuracy %.3f < 0.7", acc)
	}
}

func TestConvNetSumGradientAdditive(t *testing.T) {
	ds := smallDataset(t, 8, 10, 3)
	c, _ := NewConvNet(10, 3, 2, 3)
	params := InitParams(c, 6)
	gAll := make([]float64, c.NumParams())
	c.SumGradient(params, ds, []int{0, 1, 2}, gAll)
	gParts := make([]float64, c.NumParams())
	c.SumGradient(params, ds, []int{0}, gParts)
	c.SumGradient(params, ds, []int{1, 2}, gParts)
	for i := range gAll {
		if math.Abs(gAll[i]-gParts[i]) > 1e-12 {
			t.Fatalf("not additive at %d", i)
		}
	}
}

func BenchmarkConvNetGradient(b *testing.B) {
	ds := smallDataset(b, 64, 32, 10)
	c, err := NewConvNet(32, 5, 8, 10)
	if err != nil {
		b.Fatal(err)
	}
	params := InitParams(c, 1)
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, c.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		c.SumGradient(params, ds, idx, grad)
	}
}
