package model

import (
	"math"
	"testing"
)

// model32Cases returns the (f64, f32) model pairs under test — each is
// one value implementing both interfaces.
func model32Cases(t *testing.T, dim, classes int) []Model32 {
	t.Helper()
	sm, err := NewSoftmax(dim, classes)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := NewConvNet(dim, 3, 4, classes)
	if err != nil {
		t.Fatal(err)
	}
	return []Model32{sm, cn}
}

// TestModel32GradientParity checks the f32 gradient tracks the f64
// gradient to float32 working precision over a realistic batch.
func TestModel32GradientParity(t *testing.T) {
	ds := smallDataset(t, 40, 8, 4)
	ds32 := ds.To32()
	idx := make([]int, 32)
	for i := range idx {
		idx[i] = i
	}
	for _, m := range model32Cases(t, 8, 4) {
		p64 := InitParams(m, 17)
		p32 := InitParams32(m, 17)
		g64 := make([]float64, m.NumParams())
		g32 := make([]float32, m.NumParams())
		m.SumGradient(p64, ds, idx, g64)
		m.SumGradient32(p32, ds32, idx, g32)
		var scale float64
		for _, v := range g64 {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range g64 {
			diff := math.Abs(g64[i] - float64(g32[i]))
			if diff > 1e-4*(math.Abs(g64[i])+scale) {
				t.Errorf("%s: grad[%d] f64=%v f32=%v", m.Name(), i, g64[i], g32[i])
			}
		}
		l64 := m.Loss(p64, ds, idx)
		l32 := m.Loss32(p32, ds32, idx)
		if math.Abs(l64-l32) > 1e-4*(math.Abs(l64)+1) {
			t.Errorf("%s: loss f64=%v f32=%v", m.Name(), l64, l32)
		}
	}
}

// TestModel32GradientDeterministic pins the bit-determinism the f32
// majority vote relies on: same params, same indices, same bits.
func TestModel32GradientDeterministic(t *testing.T) {
	ds := smallDataset(t, 20, 6, 3)
	ds32 := ds.To32()
	idx := []int{3, 1, 4, 1, 5}
	for _, m := range model32Cases(t, 6, 3) {
		p32 := InitParams32(m, 5)
		g1 := make([]float32, m.NumParams())
		g2 := make([]float32, m.NumParams())
		m.SumGradient32(p32, ds32, idx, g1)
		m.SumGradient32(p32, ds32, idx, g2)
		for i := range g1 {
			if math.Float32bits(g1[i]) != math.Float32bits(g2[i]) {
				t.Fatalf("%s: f32 gradient not bit-deterministic at %d", m.Name(), i)
			}
		}
	}
}

// TestModel32PredictAgreement checks the two widths classify (almost)
// identically at a shared parameter point.
func TestModel32PredictAgreement(t *testing.T) {
	ds := smallDataset(t, 100, 8, 4)
	ds32 := ds.To32()
	for _, m := range model32Cases(t, 8, 4) {
		p64 := InitParams(m, 23)
		p32 := InitParams32(m, 23)
		agree := 0
		for i, x := range ds.X {
			if m.Predict(p64, x) == m.Predict32(p32, ds32.X[i]) {
				agree++
			}
		}
		if agree < 95 {
			t.Errorf("%s: only %d/100 predictions agree across widths", m.Name(), agree)
		}
	}
}

// TestTrainingReducesLoss32 trains the f32 path end to end: SGD on
// float32 parameters must fit the separable synthetic task.
func TestTrainingReducesLoss32(t *testing.T) {
	ds := smallDataset(t, 200, 6, 3)
	ds32 := ds.To32()
	for _, m := range model32Cases(t, 6, 3) {
		params := InitParams32(m, 7)
		idx := make([]int, ds32.Len())
		for i := range idx {
			idx[i] = i
		}
		initial := m.Loss32(params, ds32, idx)
		grad := make([]float32, m.NumParams())
		for step := 0; step < 100; step++ {
			clear(grad)
			m.SumGradient32(params, ds32, idx, grad)
			lr := float32(0.1 / float64(len(idx)))
			for i := range params {
				params[i] -= lr * grad[i]
			}
		}
		final := m.Loss32(params, ds32, idx)
		if final >= initial {
			t.Errorf("%s: f32 loss did not decrease: %v -> %v", m.Name(), initial, final)
		}
		if acc := Accuracy32(m, params, ds32); acc < 0.8 {
			t.Errorf("%s: f32 training accuracy %v < 0.8 on separable data", m.Name(), acc)
		}
	}
}

// TestDataset32Conversion pins the deterministic narrowing.
func TestDataset32Conversion(t *testing.T) {
	ds := smallDataset(t, 10, 4, 3)
	a, b := ds.To32(), ds.To32()
	if a.Len() != ds.Len() || a.Dim() != ds.Dim() || a.Classes != ds.Classes {
		t.Fatal("Dataset32 shape mismatch")
	}
	for i := range a.X {
		for j := range a.X[i] {
			if math.Float32bits(a.X[i][j]) != math.Float32bits(b.X[i][j]) {
				t.Fatal("To32 not deterministic")
			}
			if a.X[i][j] != float32(ds.X[i][j]) {
				t.Fatal("To32 not a per-feature narrowing")
			}
		}
	}
}

// TestInitParams32Matches pins InitParams32 as the narrowed image of
// the f64 init.
func TestInitParams32Matches(t *testing.T) {
	m, _ := NewConvNet(10, 3, 2, 4)
	p64 := InitParams(m, 42)
	p32 := InitParams32(m, 42)
	for i := range p64 {
		if p32[i] != float32(p64[i]) {
			t.Fatalf("InitParams32[%d] = %v, want %v", i, p32[i], float32(p64[i]))
		}
	}
}
