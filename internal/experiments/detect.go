package experiments

import (
	"context"
	"fmt"
	"io"

	"byzshield/internal/aggregate"
	"byzshield/internal/cluster"
	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/registry"
)

// DetectRow is one cell of the attack × detector arms-race sweep: a
// MOLS-assigned cluster trained under a named attack with a named
// PS-side detector, reporting the final accuracy, the fleet's mean
// reputation, and how the blacklist split between Byzantine and honest
// workers — the false-positive column is the one that must stay zero.
type DetectRow struct {
	Attack   string
	Detector string
	// Final is the final test accuracy (0 when Err is set).
	Final float64
	// MeanReputation is the fleet-wide mean reputation after the last
	// round (1 with detection off).
	MeanReputation float64
	// ByzBlacklisted / HonestBlacklisted split the final blacklist by
	// the run's ground-truth Byzantine set.
	ByzBlacklisted    int
	HonestBlacklisted int
	// FlaggedRounds counts rounds where the detector flagged anyone.
	FlaggedRounds int
	// Err is non-empty when the configuration failed.
	Err string
}

// DetectSweep trains the attack × detector matrix in process on the
// MOLS(5,3) cluster with the worst-case q = 3 Byzantine placement:
// every registry attack the coalition can mount against every detector,
// including the detection-free control column. Every cell is
// deterministic given opts.
func DetectSweep(ctx context.Context, opts TrainOpts) ([]DetectRow, error) {
	attacks := []string{"benign", "reversed", "sign-flip", "alie"}
	detectors := []string{"none", "zscore", "cluster"}
	var rows []DetectRow
	for _, atk := range attacks {
		for _, det := range detectors {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			rows = append(rows, runDetectCell(ctx, atk, det, opts))
		}
	}
	return rows, nil
}

// runDetectCell executes one (attack, detector) cell.
func runDetectCell(ctx context.Context, atkName, detName string, opts TrainOpts) DetectRow {
	row := DetectRow{Attack: atkName, Detector: detName, MeanReputation: 1}
	asn, err := components.Scheme("mols", registry.SchemeParams{L: 5, R: 3})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	byz, _ := selectByzantines(ctx, asn, 3, opts.SearchBudget)
	byzSet := make(map[int]bool, len(byz))
	for _, u := range byz {
		byzSet[u] = true
	}
	atk, err := components.Attack(atkName)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	det, err := components.Detector(detName)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: opts.TrainN, Test: opts.TestN, Dim: opts.Dim,
		Classes: opts.Classes, ClassSep: opts.ClassSep, Seed: opts.Seed,
	})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	var mdl model.Model
	if opts.Hidden > 0 {
		mdl, err = model.NewMLP(opts.Dim, opts.Hidden, opts.Classes)
	} else {
		mdl, err = model.NewSoftmax(opts.Dim, opts.Classes)
	}
	if err != nil {
		row.Err = err.Error()
		return row
	}
	dist, err := opts.distribution()
	if err != nil {
		row.Err = err.Error()
		return row
	}
	eng, err := cluster.New(cluster.Config{
		Assignment:   asn,
		Model:        mdl,
		Train:        train,
		Test:         test,
		BatchSize:    opts.BatchSize,
		Attack:       atk,
		Byzantines:   byz,
		Aggregator:   aggregate.Median{},
		Schedule:     defaultSchedule,
		Momentum:     0.9,
		Seed:         opts.Seed,
		Detector:     det,
		Distribution: dist,
	})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	defer eng.Close()
	for t := 0; t < opts.Iterations; t++ {
		stats, err := eng.StepOnce(ctx)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		row.MeanReputation = stats.MeanReputation
		if stats.FlaggedWorkers > 0 {
			row.FlaggedRounds++
		}
		for _, u := range stats.BlacklistedWorkers {
			if byzSet[u] {
				row.ByzBlacklisted++
			} else {
				row.HonestBlacklisted++
			}
		}
	}
	row.Final = eng.Evaluate()
	return row
}

// RenderDetectSweep writes the sweep as an aligned text table.
func RenderDetectSweep(w io.Writer, rows []DetectRow) {
	fmt.Fprintf(w, "%-10s %-8s %8s %9s %8s %8s %8s  %s\n",
		"attack", "detector", "final", "mean-rep", "byz-bl", "hon-bl", "flagged", "error")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %8.4f %9.3f %8d %8d %8d  %s\n",
			r.Attack, r.Detector, r.Final, r.MeanReputation,
			r.ByzBlacklisted, r.HonestBlacklisted, r.FlaggedRounds, r.Err)
	}
}
