package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"byzshield/internal/attack"
)

// quickOpts returns heavily scaled-down options so the full figure suite
// stays fast in unit tests; the shape assertions below still hold.
func quickOpts() TrainOpts {
	o := DefaultTrainOpts()
	o.Iterations = 60
	o.EvalEvery = 20
	o.TrainN = 800
	o.TestN = 300
	o.Dim = 16
	o.BatchSize = 200
	o.SearchBudget = 5 * time.Second
	return o
}

func finalAcc(c Curve) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Accuracy
}

func curveByLabel(t *testing.T, fig Figure, label string) Curve {
	t.Helper()
	for _, c := range fig.Curves {
		if c.Label == label {
			return c
		}
	}
	t.Fatalf("figure %s has no curve %q (have %v)", fig.ID, label, labels(fig))
	return Curve{}
}

func labels(fig Figure) []string {
	var out []string
	for _, c := range fig.Curves {
		out = append(out, c.Label)
	}
	return out
}

// TestTableRunsMatchPaper re-validates the Table 3 values through the
// experiments-layer plumbing.
func TestTableRunsMatchPaper(t *testing.T) {
	rows, err := RunTable(context.Background(), Table3Spec(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wantC := map[int]int{2: 1, 3: 3, 4: 5, 5: 8, 6: 12, 7: 14}
	for _, r := range rows {
		if !r.Exact {
			t.Errorf("q=%d not exact", r.Q)
		}
		if r.CMax != wantC[r.Q] {
			t.Errorf("q=%d c_max=%d want %d", r.Q, r.CMax, wantC[r.Q])
		}
	}
	// Spot-check comparison columns for q=2 (paper row: 0.04/0.13/0.2/2.11).
	r0 := rows[0]
	if math.Abs(r0.EpsByz-0.04) > 1e-9 {
		t.Errorf("eps_byz = %v", r0.EpsByz)
	}
	if math.Abs(r0.EpsBaseline-2.0/15) > 1e-9 {
		t.Errorf("eps_baseline = %v", r0.EpsBaseline)
	}
	if math.Abs(r0.EpsFRC-0.2) > 1e-9 {
		t.Errorf("eps_frc = %v", r0.EpsFRC)
	}
	if math.Abs(r0.Gamma-2.11) > 0.01 {
		t.Errorf("gamma = %v", r0.Gamma)
	}
}

func TestTableByID(t *testing.T) {
	for _, id := range []string{"3", "4", "5", "6", "table3", "table6"} {
		if _, err := TableByID(id); err != nil {
			t.Errorf("TableByID(%q): %v", id, err)
		}
	}
	if _, err := TableByID("7"); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestFigure2Shape verifies the paper's central claim on the ALIE/median
// figure: ByzShield's ε̂ is far below DETOX's and baseline's, and its
// final accuracy is at least as good.
func TestFigure2Shape(t *testing.T) {
	fig := Figure2(context.Background(), quickOpts())
	byz3 := curveByLabel(t, fig, "ByzShield, q = 3")
	det3 := curveByLabel(t, fig, "DETOX-MoM, q = 3")
	med3 := curveByLabel(t, fig, "Median, q = 3")
	if byz3.Err != "" || det3.Err != "" || med3.Err != "" {
		t.Fatalf("unexpected errors: %q %q %q", byz3.Err, det3.Err, med3.Err)
	}
	// ε̂: ByzShield 0.04 vs DETOX 0.2 vs baseline 0.12 (Table 4 / Sec 6.2).
	if math.Abs(byz3.Epsilon-0.04) > 1e-9 {
		t.Errorf("ByzShield ε̂ = %v, want 0.04", byz3.Epsilon)
	}
	if math.Abs(det3.Epsilon-0.2) > 1e-9 {
		t.Errorf("DETOX ε̂ = %v, want 0.2", det3.Epsilon)
	}
	if math.Abs(med3.Epsilon-0.12) > 1e-9 {
		t.Errorf("baseline ε̂ = %v, want 0.12", med3.Epsilon)
	}
	if finalAcc(byz3) < finalAcc(det3)-0.02 {
		t.Errorf("ByzShield (%.3f) should not trail DETOX (%.3f) under ALIE",
			finalAcc(byz3), finalAcc(det3))
	}
}

// TestFigure7InfeasibleBulyan: Bulyan at q = 9 requires 4·c+3 operands
// it does not have — the run must be reported infeasible, as in the
// paper, while ByzShield q = 9 still trains.
func TestFigure7Infeasible(t *testing.T) {
	fig := Figure7(context.Background(), quickOpts())
	bul9 := curveByLabel(t, fig, "Bulyan, q = 9")
	if bul9.Err == "" || !strings.Contains(bul9.Err, "infeasible") {
		t.Errorf("Bulyan q=9 should be infeasible, got %q", bul9.Err)
	}
	byz9 := curveByLabel(t, fig, "ByzShield, q = 9")
	if byz9.Err != "" {
		t.Fatalf("ByzShield q=9 failed: %s", byz9.Err)
	}
	if math.Abs(byz9.Epsilon-0.36) > 1e-9 {
		t.Errorf("ByzShield q=9 ε̂ = %v, want 0.36 (Table 4)", byz9.Epsilon)
	}
	if finalAcc(byz9) < 0.3 {
		t.Errorf("ByzShield q=9 accuracy %.3f too low", finalAcc(byz9))
	}
}

// TestFigure8DETOXMultiKrumInfeasibleAtQ9 mirrors "DETOX cannot be
// paired with Multi-Krum in this case as it needs at least 2c+3 = 7
// groups".
func TestFigure8DETOXMultiKrumInfeasibleAtQ9(t *testing.T) {
	fig := Figure8(context.Background(), quickOpts())
	dmk9 := curveByLabel(t, fig, "DETOX-Multi-Krum, q = 9")
	if dmk9.Err == "" || !strings.Contains(dmk9.Err, "infeasible") {
		t.Errorf("DETOX-Multi-Krum q=9 should be infeasible, got %q", dmk9.Err)
	}
	dmk3 := curveByLabel(t, fig, "DETOX-Multi-Krum, q = 3")
	if dmk3.Err != "" {
		t.Errorf("DETOX-Multi-Krum q=3 should run: %s", dmk3.Err)
	}
}

// TestFigure6DETOXBreaksAtQ9: with ε̂ = 0.6 the majority of DETOX's vote
// winners are reversed, so its accuracy must collapse toward chance
// while ByzShield (ε̂ = 0.36) still converges — the paper's headline
// fragility result.
func TestFigure6DETOXBreaksAtQ9(t *testing.T) {
	fig := Figure6(context.Background(), quickOpts())
	det9 := curveByLabel(t, fig, "DETOX-MoM, q = 9")
	byz9 := curveByLabel(t, fig, "ByzShield, q = 9")
	if det9.Err != "" || byz9.Err != "" {
		t.Fatalf("unexpected errors: %q %q", det9.Err, byz9.Err)
	}
	if math.Abs(det9.Epsilon-0.6) > 1e-9 {
		t.Errorf("DETOX q=9 ε̂ = %v, want 0.6", det9.Epsilon)
	}
	if finalAcc(byz9) < finalAcc(det9)+0.2 {
		t.Errorf("ByzShield q=9 (%.3f) should clearly beat broken DETOX (%.3f)",
			finalAcc(byz9), finalAcc(det9))
	}
	if finalAcc(det9) > 0.35 {
		t.Errorf("DETOX q=9 should collapse toward chance, got %.3f", finalAcc(det9))
	}
}

func TestFigureByID(t *testing.T) {
	opts := quickOpts()
	opts.Iterations = 5
	opts.EvalEvery = 5
	for _, id := range []string{"9", "10", "11"} {
		fig, err := FigureByID(context.Background(), id, opts)
		if err != nil {
			t.Fatalf("FigureByID(%q): %v", id, err)
		}
		if len(fig.Curves) == 0 {
			t.Errorf("figure %s has no curves", id)
		}
	}
	if _, err := FigureByID(context.Background(), "99", opts); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigure12Timing(t *testing.T) {
	opts := quickOpts()
	rows, err := Figure12(context.Background(), opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]TimingRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.Compute <= 0 || r.Communication <= 0 || r.Aggregation <= 0 {
			t.Errorf("%s: missing phase time %+v", r.Scheme, r)
		}
		// quickOpts runs without a detector: the detect column must be
		// exactly zero, not leak vote/aggregate time.
		if opts.Detector == "" && r.Detect != 0 {
			t.Errorf("%s: detect time %v without a detector", r.Scheme, r.Detect)
		}
	}
	// ByzShield transmits l = 5 gradients per worker vs 1 for the
	// baseline: its raw-equivalent message volume must be close to 5×
	// the baseline's (raw bytes are deterministic; the uplink codec's
	// realized bytes depend on gradient correlation, so the structural
	// ratio is asserted on the uncompressed volume).
	bs := byName["ByzShield"]
	base := byName["Median"]
	ratio := float64(bs.ReportRawBytes) / float64(base.ReportRawBytes)
	if ratio < 4 || ratio > 6 {
		t.Errorf("ByzShield raw report bytes %d / baseline %d = %.2f, want ≈5", bs.ReportRawBytes, base.ReportRawBytes, ratio)
	}
	if bs.ReportBytes > bs.ReportRawBytes {
		t.Errorf("uplink codec moved %d bytes, raw would be %d — self-selection must never lose",
			bs.ReportBytes, bs.ReportRawBytes)
	}
	// Redundant computation: ByzShield computes r× the baseline work.
	// Wall-clock is noisy in CI, so require only a directional gap over
	// the accumulated rounds.
	if bs.Compute <= base.Compute {
		t.Logf("note: ByzShield compute %v did not exceed baseline %v (timing noise)", bs.Compute, base.Compute)
	}
	var buf bytes.Buffer
	RenderTiming(&buf, rows)
	if !strings.Contains(buf.String(), "ByzShield") {
		t.Error("timing rendering missing scheme")
	}
	if !strings.Contains(buf.String(), "detect/iter") {
		t.Error("timing rendering missing detect column")
	}
	// With a detector the detect column is populated — and it is carried
	// separately from Aggregation, so enabling detection must not inflate
	// the aggregation phase by construction.
	dopts := opts
	dopts.Detector = "zscore"
	drow, err := timeOne(context.Background(), "ByzShield+zscore", byzShieldSpec(25, 3, attack.ALIE{}), dopts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if drow.Detect <= 0 {
		t.Errorf("detector enabled but detect time is %v", drow.Detect)
	}
}

func TestRenderers(t *testing.T) {
	rows, err := RunTable(context.Background(), Table3Spec(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable(&buf, Table3Spec(), rows)
	out := buf.String()
	if !strings.Contains(out, "c_max") || !strings.Contains(out, "gamma") {
		t.Errorf("table rendering missing headers:\n%s", out)
	}
	buf.Reset()
	RenderTableCSV(&buf, rows)
	if !strings.HasPrefix(buf.String(), "q,c_max,exact") {
		t.Error("CSV header wrong")
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(rows)+1)
	}

	opts := quickOpts()
	opts.Iterations = 5
	opts.EvalEvery = 5
	fig := Figure10(context.Background(), opts)
	buf.Reset()
	RenderFigure(&buf, fig)
	if !strings.Contains(buf.String(), "ByzShield") {
		t.Error("figure rendering missing curves")
	}
	buf.Reset()
	RenderFigureCSV(&buf, fig)
	if !strings.Contains(buf.String(), "curve,epsilon") {
		t.Error("figure CSV header wrong")
	}
	buf.Reset()
	RenderFigureSeries(&buf, fig)
	if !strings.Contains(buf.String(), "iteration") {
		t.Error("series rendering missing header")
	}
}

func TestRunOneBenignDefault(t *testing.T) {
	opts := quickOpts()
	opts.Iterations = 30
	opts.EvalEvery = 30
	c := RunOne(context.Background(), RunSpec{
		Label: "attack-free", Pipeline: PipelineBaseline, K: 10, Q: 0,
	}, opts)
	if c.Err != "" {
		t.Fatalf("benign run failed: %s", c.Err)
	}
	if c.Epsilon != 0 {
		t.Errorf("ε̂ = %v, want 0", c.Epsilon)
	}
	if finalAcc(c) < 0.5 {
		t.Errorf("attack-free accuracy %.3f", finalAcc(c))
	}
}

// TestRunOneZeroIterations: invalid iteration counts surface as a
// curve error, not a panic on the empty history.
func TestRunOneZeroIterations(t *testing.T) {
	opts := quickOpts()
	opts.Iterations = 0
	c := RunOne(context.Background(), RunSpec{
		Label: "zero-iters", Pipeline: PipelineBaseline, K: 10,
	}, opts)
	if c.Err == "" {
		t.Error("zero iterations accepted")
	}
	if len(c.Points) != 0 {
		t.Errorf("points = %v", c.Points)
	}
}

func TestRunOneReportsBuildErrors(t *testing.T) {
	c := RunOne(context.Background(), RunSpec{Label: "bad", Pipeline: PipelineByzShield}, quickOpts())
	if c.Err == "" {
		t.Error("missing scheme accepted")
	}
	c = RunOne(context.Background(), RunSpec{Label: "bad-frc", Pipeline: PipelineDETOX, K: 10, R: 3}, quickOpts())
	if c.Err == "" {
		t.Error("invalid FRC parameters accepted")
	}
}

var _ = attack.Benign{} // keep the import for spec examples above
