package experiments

import (
	"context"
	"fmt"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/attack"
	"byzshield/internal/cluster"
	"byzshield/internal/data"
	"byzshield/internal/detect"
	"byzshield/internal/model"
)

// TimingRow is one bar group of Figure 12: the per-iteration wall-clock
// split of a scheme into computation, communication, aggregation, and
// detection, plus the exact serialized message volume.
type TimingRow struct {
	Scheme        string
	Compute       time.Duration
	Communication time.Duration
	// Aggregation covers vote + robust aggregation + optimizer step;
	// Detect is the detection/reputation pass, reported as its own
	// column (zero when no detector runs) so the Figure-12 phase split
	// shows what the Byzantine defense itself costs per iteration.
	Aggregation time.Duration
	Detect      time.Duration
	// ReportBytes is the measured worker→PS gradient-report volume as
	// the uplink codec moved it (delta frames where they paid, raw
	// otherwise); ReportRawBytes what raw frames would have cost — the
	// two together give the realized uplink compression ratio.
	ReportBytes    int64
	ReportRawBytes int64
	// BroadcastBytes is the measured PS→worker parameter broadcast
	// volume (full frames every BroadcastFullEvery rounds, bit-exact
	// XOR deltas otherwise).
	BroadcastBytes int64
	Rounds         int
	// MeanReputation is the fleet's mean reputation after the last
	// round (1 when detection is off); Blacklisted the final blacklist
	// size.
	MeanReputation float64
	Blacklisted    int
}

// PerIteration returns the phase times divided by the round count.
func (r TimingRow) PerIteration() (compute, comm, agg, det time.Duration) {
	n := time.Duration(r.Rounds)
	if n == 0 {
		n = 1
	}
	return r.Compute / n, r.Communication / n, r.Aggregation / n, r.Detect / n
}

// Figure12 measures the per-iteration time split for the three
// median-family schemes of the paper's timing comparison (baseline
// median, ByzShield, DETOX-MoM) under the ALIE attack with q = 3,
// K = 25. Communication is physically exercised via gob serialization
// (MeasureComm).
func Figure12(ctx context.Context, opts TrainOpts, rounds int) ([]TimingRow, error) {
	if rounds < 1 {
		rounds = 10
	}
	specs := []RunSpec{
		baselineMedianSpec(25, 3, attack.ALIE{}),
		byzShieldSpec(25, 3, attack.ALIE{}),
		detoxMoMSpec(25, 5, 3, attack.ALIE{}),
	}
	names := []string{"Median", "ByzShield", "DETOX-MoM"}
	var rows []TimingRow
	for i, spec := range specs {
		row, err := timeOne(ctx, names[i], spec, opts, rounds)
		if err != nil {
			return nil, fmt.Errorf("experiments: timing %s: %w", names[i], err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timeOne runs `rounds` protocol rounds with communication measurement
// enabled and reports the accumulated phase times.
func timeOne(ctx context.Context, name string, spec RunSpec, opts TrainOpts, rounds int) (TimingRow, error) {
	asn, err := buildAssignment(&spec)
	if err != nil {
		return TimingRow{}, err
	}
	byz, _ := selectByzantines(ctx, asn, spec.Q, opts.SearchBudget)
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: opts.TrainN, Test: opts.TestN, Dim: opts.Dim,
		Classes: opts.Classes, ClassSep: opts.ClassSep, Seed: opts.Seed,
	})
	if err != nil {
		return TimingRow{}, err
	}
	var mdl model.Model
	if opts.Hidden > 0 {
		mdl, err = model.NewMLP(opts.Dim, opts.Hidden, opts.Classes)
	} else {
		mdl, err = model.NewSoftmax(opts.Dim, opts.Classes)
	}
	if err != nil {
		return TimingRow{}, err
	}
	agg := spec.Aggregator
	if agg == nil {
		agg = aggregate.Median{}
	}
	var det detect.Detector
	if opts.Detector != "" {
		if det, err = components.Detector(opts.Detector); err != nil {
			return TimingRow{}, err
		}
	}
	eng, err := cluster.New(cluster.Config{
		Assignment:  asn,
		Model:       mdl,
		Train:       train,
		Test:        test,
		BatchSize:   opts.BatchSize,
		Attack:      spec.Attack,
		Byzantines:  byz,
		Aggregator:  agg,
		Schedule:    defaultSchedule,
		Momentum:    0.9,
		Seed:        opts.Seed,
		Detector:    det,
		MeasureComm: true,
		UplinkTier:  opts.Uplink,
		// Delta parameter broadcasts with a periodic full refresh — the
		// steady-state policy of the TCP server, so the measured
		// PS→worker volume reflects the bandwidth-aware wire protocol.
		BroadcastFullEvery: 16,
	})
	if err != nil {
		return TimingRow{}, err
	}
	defer eng.Close()
	meanRep, blacklisted := 1.0, 0
	for t := 0; t < rounds; t++ {
		stats, err := eng.StepOnce(ctx)
		if err != nil {
			return TimingRow{}, err
		}
		meanRep = stats.MeanReputation
		blacklisted = stats.Blacklisted
	}
	times := eng.Times()
	return TimingRow{
		Scheme:         name,
		Compute:        times.Compute,
		Communication:  times.Communication,
		Aggregation:    times.Aggregation,
		Detect:         times.Detect,
		ReportBytes:    times.ReportBytes,
		ReportRawBytes: times.ReportRawBytes,
		BroadcastBytes: times.BroadcastBytes,
		Rounds:         rounds,
		MeanReputation: meanRep,
		Blacklisted:    blacklisted,
	}, nil
}
