package experiments

import (
	"context"
	"fmt"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/registry"
)

// The paper's K = 25 cluster uses the Ramanujan Case 2 construction with
// r = l = 5 (f = 25 files); the K = 15 cluster uses MOLS with l = 5,
// r = 3 (f = 25 files). DETOX runs FRC with the same K and r.

// alieAttack returns the ALIE configuration used by the figures:
// z = 1.0, matching the grid-searched z ≈ 1.035 that Baruch et al. use
// in their experiments (the closed-form z_max is far more conservative
// and under-reports the attack's strength on small clusters).
func alieAttack() attack.Attack { return attack.ALIE{ZOverride: 1.0} }

func byzShield25() (*assign.Assignment, error) {
	return components.Scheme("ramanujan2", registry.SchemeParams{L: 5, R: 5})
}

func byzShield15() (*assign.Assignment, error) {
	return components.Scheme("mols", registry.SchemeParams{L: 5, R: 3})
}

// detoxMoMFor returns DETOX's median-of-means over the K/r vote
// winners: three groups (sizes ⌈w/3⌉...) so that group means are true
// means — one corrupted winner pollutes its whole group, the weakness
// ALIE exploits.
func detoxMoMFor(winners int) aggregate.Aggregator {
	g := 3
	if g > winners {
		g = winners
	}
	return aggregate.MedianOfMeans{Groups: g}
}

// byzShieldSpec builds the standard ByzShield curve at cluster size k.
func byzShieldSpec(k, q int, atk attack.Attack) RunSpec {
	scheme := byzShield25
	if k == 15 {
		scheme = byzShield15
	}
	return RunSpec{
		Label:      fmt.Sprintf("ByzShield, q = %d", q),
		Pipeline:   PipelineByzShield,
		Scheme:     scheme,
		K:          k,
		Q:          q,
		Attack:     atk,
		Aggregator: aggregate.Median{},
	}
}

// baselineMedianSpec is the un-replicated coordinate-wise median.
func baselineMedianSpec(k, q int, atk attack.Attack) RunSpec {
	return RunSpec{
		Label:      fmt.Sprintf("Median, q = %d", q),
		Pipeline:   PipelineBaseline,
		K:          k,
		Q:          q,
		Attack:     atk,
		Aggregator: aggregate.Median{},
	}
}

// detoxMoMSpec is DETOX (FRC grouping, r = 5 at K = 25; r = 3 at K = 15)
// with median-of-means on the vote winners.
func detoxMoMSpec(k, r, q int, atk attack.Attack) RunSpec {
	return RunSpec{
		Label:      fmt.Sprintf("DETOX-MoM, q = %d", q),
		Pipeline:   PipelineDETOX,
		K:          k,
		R:          r,
		Q:          q,
		Attack:     atk,
		Aggregator: detoxMoMFor(k / r),
	}
}

// bulyanSpec is the baseline Bulyan defense with c = q.
func bulyanSpec(k, q int, atk attack.Attack) RunSpec {
	return RunSpec{
		Label:      fmt.Sprintf("Bulyan, q = %d", q),
		Pipeline:   PipelineBaseline,
		K:          k,
		Q:          q,
		Attack:     atk,
		Aggregator: aggregate.Bulyan{C: q},
	}
}

// multiKrumSpec is the baseline Multi-Krum defense with c = q.
func multiKrumSpec(k, q int, atk attack.Attack) RunSpec {
	return RunSpec{
		Label:      fmt.Sprintf("Multi-Krum, q = %d", q),
		Pipeline:   PipelineBaseline,
		K:          k,
		Q:          q,
		Attack:     atk,
		Aggregator: aggregate.MultiKrum{C: q},
	}
}

// detoxMultiKrumSpec pairs DETOX's vote with Multi-Krum over the K/r
// winners; the corruption parameter is the number of stolen groups
// ⌊q/r'⌋, and feasibility (winners ≥ 2c+3) mirrors the paper's limits.
func detoxMultiKrumSpec(k, r, q int, atk attack.Attack) RunSpec {
	return RunSpec{
		Label:    fmt.Sprintf("DETOX-Multi-Krum, q = %d", q),
		Pipeline: PipelineDETOX,
		K:        k,
		R:        r,
		Q:        q,
		Attack:   atk,
		AggregatorFor: func(c int) aggregate.Aggregator {
			return aggregate.MultiKrum{C: c}
		},
	}
}

// signSGDSpec is the baseline signSGD majority-vote defense.
func signSGDSpec(k, q int, atk attack.Attack) RunSpec {
	return RunSpec{
		Label:        fmt.Sprintf("signSGD, q = %d", q),
		Pipeline:     PipelineBaseline,
		K:            k,
		Q:            q,
		Attack:       atk,
		Aggregator:   aggregate.SignSGD{},
		SignMessages: true,
	}
}

// detoxSignSGDSpec pairs DETOX's vote with coordinate-sign majority.
func detoxSignSGDSpec(k, r, q int, atk attack.Attack) RunSpec {
	return RunSpec{
		Label:        fmt.Sprintf("DETOX-signSGD, q = %d", q),
		Pipeline:     PipelineDETOX,
		K:            k,
		R:            r,
		Q:            q,
		Attack:       atk,
		Aggregator:   aggregate.SignSGD{},
		SignMessages: true,
	}
}

// Figure2 — ALIE attack, median-based defenses, K = 25 (paper Fig. 2):
// baseline median, ByzShield, DETOX-MoM at q = 3 and 5.
func Figure2(ctx context.Context, opts TrainOpts) Figure {
	atk := alieAttack()
	return RunFigure(ctx, "fig2", "ALIE attack and median-based defenses (K=25)", []RunSpec{
		baselineMedianSpec(25, 3, atk),
		baselineMedianSpec(25, 5, atk),
		byzShieldSpec(25, 3, atk),
		byzShieldSpec(25, 5, atk),
		detoxMoMSpec(25, 5, 3, atk),
		detoxMoMSpec(25, 5, 5, atk),
	}, opts)
}

// Figure3 — ALIE attack, Bulyan defenses, K = 25 (paper Fig. 3).
func Figure3(ctx context.Context, opts TrainOpts) Figure {
	atk := alieAttack()
	return RunFigure(ctx, "fig3", "ALIE attack and Bulyan-based defenses (K=25)", []RunSpec{
		bulyanSpec(25, 3, atk),
		bulyanSpec(25, 5, atk),
		byzShieldSpec(25, 3, atk),
		byzShieldSpec(25, 5, atk),
	}, opts)
}

// Figure4 — ALIE attack, Multi-Krum defenses, K = 25 (paper Fig. 4).
func Figure4(ctx context.Context, opts TrainOpts) Figure {
	atk := alieAttack()
	return RunFigure(ctx, "fig4", "ALIE attack and Multi-Krum-based defenses (K=25)", []RunSpec{
		multiKrumSpec(25, 3, atk),
		multiKrumSpec(25, 5, atk),
		byzShieldSpec(25, 3, atk),
		byzShieldSpec(25, 5, atk),
		detoxMultiKrumSpec(25, 5, 3, atk),
		detoxMultiKrumSpec(25, 5, 5, atk),
	}, opts)
}

// Figure5 — Constant attack, signSGD defenses, K = 25 (paper Fig. 5).
// ByzShield keeps its median pipeline, as in the paper.
func Figure5(ctx context.Context, opts TrainOpts) Figure {
	atk := attack.Constant{ScaleByFileSize: true}
	return RunFigure(ctx, "fig5", "Constant attack and signSGD-based defenses (K=25)", []RunSpec{
		signSGDSpec(25, 3, atk),
		signSGDSpec(25, 5, atk),
		byzShieldSpec(25, 3, atk),
		byzShieldSpec(25, 5, atk),
		detoxSignSGDSpec(25, 5, 3, atk),
		detoxSignSGDSpec(25, 5, 5, atk),
	}, opts)
}

// Figure6 — Reversed-gradient attack, median defenses, K = 25
// (paper Fig. 6): includes the q = 9 regime where DETOX's ε̂ = 0.6
// breaks the defense.
func Figure6(ctx context.Context, opts TrainOpts) Figure {
	atk := attack.Reversed{C: 1}
	return RunFigure(ctx, "fig6", "Reversed gradient attack and median-based defenses (K=25)", []RunSpec{
		baselineMedianSpec(25, 3, atk),
		baselineMedianSpec(25, 9, atk),
		byzShieldSpec(25, 3, atk),
		byzShieldSpec(25, 9, atk),
		detoxMoMSpec(25, 5, 3, atk),
		detoxMoMSpec(25, 5, 9, atk),
	}, opts)
}

// Figure7 — Reversed-gradient attack, Bulyan defenses, K = 25
// (paper Fig. 7): Bulyan is infeasible at q = 9 while ByzShield still
// converges (ε̂ = 0.36).
func Figure7(ctx context.Context, opts TrainOpts) Figure {
	atk := attack.Reversed{C: 1}
	return RunFigure(ctx, "fig7", "Reversed gradient attack and Bulyan-based defenses (K=25)", []RunSpec{
		bulyanSpec(25, 3, atk),
		bulyanSpec(25, 5, atk),
		byzShieldSpec(25, 3, atk),
		byzShieldSpec(25, 5, atk),
		byzShieldSpec(25, 9, atk),
		bulyanSpec(25, 9, atk), // expected infeasible: 25 < 4·9+3
	}, opts)
}

// Figure8 — Reversed-gradient attack, Multi-Krum defenses, K = 25
// (paper Fig. 8): DETOX-Multi-Krum is infeasible at q = 9 (needs
// 2c+3 = 9 > 5 groups).
func Figure8(ctx context.Context, opts TrainOpts) Figure {
	atk := attack.Reversed{C: 1}
	return RunFigure(ctx, "fig8", "Reversed gradient attack and Multi-Krum-based defenses (K=25)", []RunSpec{
		multiKrumSpec(25, 3, atk),
		multiKrumSpec(25, 5, atk),
		multiKrumSpec(25, 9, atk),
		byzShieldSpec(25, 3, atk),
		byzShieldSpec(25, 5, atk),
		byzShieldSpec(25, 9, atk),
		detoxMultiKrumSpec(25, 5, 3, atk),
		detoxMultiKrumSpec(25, 5, 5, atk),
		detoxMultiKrumSpec(25, 5, 9, atk), // expected infeasible
	}, opts)
}

// Figure9 — ALIE attack, median defenses, K = 15 (paper Fig. 9).
func Figure9(ctx context.Context, opts TrainOpts) Figure {
	atk := alieAttack()
	return RunFigure(ctx, "fig9", "ALIE attack and median-based defenses (K=15)", []RunSpec{
		baselineMedianSpec(15, 2, atk),
		byzShieldSpec(15, 2, atk),
		detoxMoMSpec(15, 3, 2, atk),
	}, opts)
}

// Figure10 — ALIE attack, Bulyan defenses, K = 15 (paper Fig. 10).
func Figure10(ctx context.Context, opts TrainOpts) Figure {
	atk := alieAttack()
	return RunFigure(ctx, "fig10", "ALIE attack and Bulyan-based defenses (K=15)", []RunSpec{
		bulyanSpec(15, 2, atk),
		byzShieldSpec(15, 2, atk),
	}, opts)
}

// Figure11 — ALIE attack, Multi-Krum defenses, K = 15 (paper Fig. 11).
func Figure11(ctx context.Context, opts TrainOpts) Figure {
	atk := alieAttack()
	return RunFigure(ctx, "fig11", "ALIE attack and Multi-Krum-based defenses (K=15)", []RunSpec{
		multiKrumSpec(15, 2, atk),
		byzShieldSpec(15, 2, atk),
		detoxMultiKrumSpec(15, 3, 2, atk),
	}, opts)
}

// FigureByID dispatches a figure id ("2".."11" or "fig2".."fig11").
func FigureByID(ctx context.Context, id string, opts TrainOpts) (Figure, error) {
	switch id {
	case "2", "fig2":
		return Figure2(ctx, opts), nil
	case "3", "fig3":
		return Figure3(ctx, opts), nil
	case "4", "fig4":
		return Figure4(ctx, opts), nil
	case "5", "fig5":
		return Figure5(ctx, opts), nil
	case "6", "fig6":
		return Figure6(ctx, opts), nil
	case "7", "fig7":
		return Figure7(ctx, opts), nil
	case "8", "fig8":
		return Figure8(ctx, opts), nil
	case "9", "fig9":
		return Figure9(ctx, opts), nil
	case "10", "fig10":
		return Figure10(ctx, opts), nil
	case "11", "fig11":
		return Figure11(ctx, opts), nil
	default:
		return Figure{}, fmt.Errorf("experiments: unknown figure %q", id)
	}
}
