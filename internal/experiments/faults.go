package experiments

import (
	"context"
	"fmt"
	"io"

	"byzshield/internal/aggregate"
	"byzshield/internal/cluster"
	"byzshield/internal/data"
	"byzshield/internal/fault"
	"byzshield/internal/model"
	"byzshield/internal/registry"
)

// FaultRow is one cell of the fault-tolerance sweep: an assignment
// scheme trained under an injected worker-fault scenario, with the
// realized degradation totals and the final accuracy.
type FaultRow struct {
	Scheme string
	Fault  string
	// Final is the final test accuracy (0 when Err is set).
	Final float64
	// MissingRounds counts rounds with at least one missing worker.
	MissingRounds int
	// DegradedVotes and DroppedFiles total the degraded file votes and
	// quorum-dropped files across the run.
	DegradedVotes int
	DroppedFiles  int
	// Err is non-empty when the configuration failed (e.g. a
	// redundancy-free scheme losing every replica of a file).
	Err string
}

// faultScenario names one injected fault pattern of the sweep.
type faultScenario struct {
	label string
	build func(k int) fault.Fault
}

// faultSweepScenarios returns the scenario column of the sweep, scaled
// to the cluster size: fault-free control, a two-worker mid-run crash,
// and three flaky workers dropping 30% of their rounds.
func faultSweepScenarios(iterations int) []faultScenario {
	return []faultScenario{
		{label: "none", build: func(int) fault.Fault { return fault.None{} }},
		{label: "crash-2", build: func(k int) fault.Fault {
			return fault.Crash{Workers: []int{0, k / 2}, AtRound: iterations / 3}
		}},
		{label: "flaky-3", build: func(k int) fault.Fault {
			return fault.Flaky{Workers: []int{1, k / 3, k - 1}, P: 0.3, Seed: 77}
		}},
	}
}

// FaultSweep trains the scheme × fault matrix in process — ByzShield's
// MOLS expander, DETOX's FRC grouping, and the redundancy-free baseline
// under crash and flaky faults — and reports how each scheme's
// replication absorbs lost workers: degraded votes for the replicated
// schemes, dropped files (and eventually failure) for the baseline.
// Every cell is deterministic given opts.
func FaultSweep(ctx context.Context, opts TrainOpts) ([]FaultRow, error) {
	schemes := []struct {
		label string
		build func() (*cluster.Config, error)
	}{
		{"mols(5,3)", func() (*cluster.Config, error) {
			return faultSweepConfig(opts, "mols", registry.SchemeParams{L: 5, R: 3})
		}},
		{"frc(15,3)", func() (*cluster.Config, error) {
			return faultSweepConfig(opts, "frc", registry.SchemeParams{K: 15, R: 3})
		}},
		{"baseline(15)", func() (*cluster.Config, error) {
			return faultSweepConfig(opts, "baseline", registry.SchemeParams{K: 15})
		}},
	}
	var rows []FaultRow
	for _, sc := range schemes {
		for _, fs := range faultSweepScenarios(opts.Iterations) {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg, err := sc.build()
			if err != nil {
				return rows, err
			}
			cfg.Fault = fs.build(cfg.Assignment.K)
			rows = append(rows, runFaultCell(ctx, sc.label, fs.label, cfg, opts.Iterations))
		}
	}
	return rows, nil
}

// faultSweepConfig assembles the shared training configuration for one
// scheme cell.
func faultSweepConfig(opts TrainOpts, scheme string, params registry.SchemeParams) (*cluster.Config, error) {
	asn, err := components.Scheme(scheme, params)
	if err != nil {
		return nil, err
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: opts.TrainN, Test: opts.TestN, Dim: opts.Dim,
		Classes: opts.Classes, ClassSep: opts.ClassSep, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	var mdl model.Model
	if opts.Hidden > 0 {
		mdl, err = model.NewMLP(opts.Dim, opts.Hidden, opts.Classes)
	} else {
		mdl, err = model.NewSoftmax(opts.Dim, opts.Classes)
	}
	if err != nil {
		return nil, err
	}
	dist, err := opts.distribution()
	if err != nil {
		return nil, err
	}
	return &cluster.Config{
		Assignment:   asn,
		Model:        mdl,
		Train:        train,
		Test:         test,
		BatchSize:    opts.BatchSize,
		Aggregator:   aggregate.Median{},
		Schedule:     defaultSchedule,
		Momentum:     0.9,
		Seed:         opts.Seed,
		Distribution: dist,
	}, nil
}

// runFaultCell executes one (scheme, fault) cell for the given horizon,
// accumulating the per-round participation stats.
func runFaultCell(ctx context.Context, scheme, fltLabel string, cfg *cluster.Config, iterations int) FaultRow {
	row := FaultRow{Scheme: scheme, Fault: fltLabel}
	eng, err := cluster.New(*cfg)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	defer eng.Close()
	for t := 0; t < iterations; t++ {
		stats, err := eng.StepOnce(ctx)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		if len(stats.MissingWorkers) > 0 {
			row.MissingRounds++
		}
		row.DegradedVotes += stats.DegradedFiles
		row.DroppedFiles += stats.DroppedFiles
	}
	row.Final = eng.Evaluate()
	return row
}

// RenderFaultSweep writes the sweep as an aligned text table.
func RenderFaultSweep(w io.Writer, rows []FaultRow) {
	fmt.Fprintf(w, "%-14s %-10s %8s %8s %9s %8s  %s\n",
		"scheme", "fault", "final", "missing", "degraded", "dropped", "error")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-10s %8.4f %8d %9d %8d  %s\n",
			r.Scheme, r.Fault, r.Final, r.MissingRounds, r.DegradedVotes, r.DroppedFiles, r.Err)
	}
}
