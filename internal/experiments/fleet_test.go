package experiments

import (
	"context"
	"testing"
	"time"
)

// TestFleetScalingSmoke drives the scaling sweep end to end at the
// smallest fleet: all five planes over one worker count, asserting
// every mode reproduces its in-process engine reference bit-for-bit
// (the lossless modes sharing one trajectory, the quantized mode its
// own tier-pinned one) and the speedup column is anchored to the
// single-loop baseline.
func TestFleetScalingSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	points, err := FleetScaling(ctx, FleetConfig{
		WorkerCounts: []int{15},
		Rounds:       3,
		Warmup:       1,
		Reps:         1,
		InputDim:     8,
		Classes:      4,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	modes := FleetModes(2)
	if len(points) != len(modes) {
		t.Fatalf("got %d points, want %d", len(points), len(modes))
	}
	for i, pt := range points {
		if pt.Mode != modes[i].Name {
			t.Errorf("point %d mode %q, want %q", i, pt.Mode, modes[i].Name)
		}
		if !pt.BitIdentical {
			t.Errorf("mode %s K=%d: final parameters differ from the engine", pt.Mode, pt.Workers)
		}
		if pt.RoundsPerSec <= 0 {
			t.Errorf("mode %s K=%d: rounds/sec %v not positive", pt.Mode, pt.Workers, pt.RoundsPerSec)
		}
		if modes[i].Uplink.Lossy() {
			// A lossy tier must actually be lossy: landing on the
			// lossless bits would mean the quantization never ran.
			if pt.ParamsHash == points[0].ParamsHash {
				t.Errorf("mode %s K=%d: params hash matches the lossless trajectory", pt.Mode, pt.Workers)
			}
		} else if pt.ParamsHash != points[0].ParamsHash {
			t.Errorf("mode %s K=%d: params hash %x != single-loop %x",
				pt.Mode, pt.Workers, pt.ParamsHash, points[0].ParamsHash)
		}
	}
	if points[0].Mode != "single-loop" || points[0].Speedup != 1 {
		t.Errorf("baseline point = %+v, want single-loop with speedup 1", points[0])
	}
}

// TestFleetScalingRejectsBadWorkerCount pins the FRC precondition: a
// worker count that is not a positive multiple of 3 is a config error,
// not a panic deep in assignment construction.
func TestFleetScalingRejectsBadWorkerCount(t *testing.T) {
	_, err := FleetScaling(context.Background(), FleetConfig{WorkerCounts: []int{16}})
	if err == nil {
		t.Fatal("worker count 16 accepted, want error")
	}
}
