package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"byzshield/internal/distort"
	"byzshield/internal/graph"
	"byzshield/internal/registry"
)

// AblationRow compares assignment schemes at one q: spectral gap,
// worst-case distortion, and the γ prediction. This is the design-choice
// study DESIGN.md §5 calls out — why expander placements beat grouped
// and random ones.
type AblationRow struct {
	Scheme  string
	Q       int
	Mu1     float64
	CMax    int
	Exact   bool
	Epsilon float64
	Gamma   float64
}

// AblationSchemes runs the scheme ablation at K = 15, r = 3 (MOLS vs
// Ramanujan Case 1 vs FRC vs random placement) for q in [qmin, qmax]
// under ctx.
func AblationSchemes(ctx context.Context, qmin, qmax int, budget time.Duration) ([]AblationRow, error) {
	builders := []struct {
		name   string
		scheme string
		params registry.SchemeParams
	}{
		{"mols(5,3)", "mols", registry.SchemeParams{L: 5, R: 3}},
		{"ramanujan1(5,3)", "ramanujan1", registry.SchemeParams{L: 5, R: 3}},
		{"frc(15,3)", "frc", registry.SchemeParams{K: 15, R: 3}},
		{"random(15,25,3)", "random", registry.SchemeParams{K: 15, F: 25, R: 3, Seed: 7}},
	}
	var rows []AblationRow
	for _, b := range builders {
		a, err := components.Scheme(b.scheme, b.params)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", b.name, err)
		}
		spec, err := graph.ComputeSpectrum(a.Graph, 1e-6)
		if err != nil {
			return nil, err
		}
		mu1 := spec.Mu1()
		an := distort.NewAnalyzer(a)
		for q := qmin; q <= qmax; q++ {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			qctx, cancel := context.WithTimeout(ctx, budget)
			res := an.MaxDistorted(qctx, q)
			cancel()
			rows = append(rows, AblationRow{
				Scheme:  b.name,
				Q:       q,
				Mu1:     mu1,
				CMax:    res.CMax,
				Exact:   res.Exact,
				Epsilon: res.Epsilon,
				Gamma:   distort.Gamma(q, a.L, a.R, a.K, mu1),
			})
		}
	}
	return rows, nil
}

// RenderAblation writes the scheme-ablation rows as an aligned table.
func RenderAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "%-18s %3s %8s %6s %8s %8s\n", "scheme", "q", "mu1", "c_max", "eps", "gamma")
	for _, r := range rows {
		mark := ""
		if !r.Exact {
			mark = "*"
		}
		fmt.Fprintf(w, "%-18s %3d %8.4f %5d%1s %8.2f %8.2f\n",
			r.Scheme, r.Q, r.Mu1, r.CMax, mark, r.Epsilon, r.Gamma)
	}
}

// Table7Entry records one learning-rate schedule from the paper's
// hyperparameter table (Appendix A.6). Schedules are given in the
// paper's (x, y, z) notation: start at x, multiply by y every z
// iterations.
type Table7Entry struct {
	Figure   int
	Schemes  string // the figure-legend indices the schedule applies to
	Schedule [3]float64
}

// Table7 returns the paper's full Table 7 — the per-figure tuned
// learning-rate schedules. It is recorded for fidelity and used by the
// full-scale experiment configurations; the scaled-down defaults use a
// single robust schedule instead (see defaultSchedule).
func Table7() []Table7Entry {
	return []Table7Entry{
		{2, "1, 2", [3]float64{0.00625, 0.96, 15}},
		{2, "3", [3]float64{0.025, 0.96, 15}},
		{2, "4, 5, 6", [3]float64{0.01, 0.95, 20}},
		{3, "1, 2", [3]float64{0.003125, 0.96, 15}},
		{4, "1", [3]float64{0.00625, 0.96, 15}},
		{4, "2, 5, 6", [3]float64{0.01, 0.95, 20}},
		{5, "1, 2", [3]float64{0.0001, 0.99, 20}},
		{5, "3, 4", [3]float64{0.025, 0.96, 15}},
		{5, "5, 6", [3]float64{0.001, 0.5, 50}},
		{6, "1, 2, 4", [3]float64{0.05, 0.96, 15}},
		{6, "3", [3]float64{0.1, 0.95, 50}},
		{6, "5, 6", [3]float64{0.025, 0.96, 15}},
		{7, "1, 2", [3]float64{0.025, 0.96, 15}},
		{7, "4", [3]float64{0.05, 0.96, 15}},
		{8, "1, 2, 3", [3]float64{0.05, 0.96, 15}},
		{8, "7, 8", [3]float64{0.025, 0.96, 15}},
		{9, "1", [3]float64{0.003125, 0.96, 15}},
		{9, "2", [3]float64{0.01, 0.96, 15}},
		{9, "3", [3]float64{0.0125, 0.96, 15}},
		{10, "1", [3]float64{0.0015625, 0.96, 15}},
		{11, "1", [3]float64{0.003125, 0.96, 15}},
		{11, "3", [3]float64{0.0125, 0.96, 15}},
	}
}
