package experiments

import (
	"context"
	"fmt"
	"time"

	"byzshield/internal/assign"
	"byzshield/internal/distort"
	"byzshield/internal/registry"
)

// TableRow is one row of a distortion-fraction table (the format shared
// by Tables 3–6 of the paper).
type TableRow struct {
	Q           int
	CMax        int
	Exact       bool // false when the search hit its budget (lower bound)
	EpsByz      float64
	EpsBaseline float64
	EpsFRC      float64
	Gamma       float64
}

// TableSpec describes one distortion table.
type TableSpec struct {
	ID      string
	Title   string
	Scheme  func() (*assign.Assignment, error)
	QMin    int
	QMax    int
	BaseK   int // cluster size used for the baseline/FRC columns
	BaseR   int // replication used for the FRC column
	GammaMu float64
}

// Table3Spec: MOLS (K, f, l, r) = (15, 25, 5, 3), q = 2..7.
func Table3Spec() TableSpec {
	return TableSpec{
		ID:    "table3",
		Title: "Distortion fraction, MOLS (K,f,l,r)=(15,25,5,3)",
		Scheme: func() (*assign.Assignment, error) {
			return components.Scheme("mols", registry.SchemeParams{L: 5, R: 3})
		},
		QMin: 2, QMax: 7, BaseK: 15, BaseR: 3, GammaMu: 1.0 / 3,
	}
}

// Table4Spec: Ramanujan Case 2 (m, s) = (5, 5), (K,f,l,r) = (25,25,5,5),
// q = 3..12.
func Table4Spec() TableSpec {
	return TableSpec{
		ID:    "table4",
		Title: "Distortion fraction, Ramanujan Case 2 (K,f,l,r)=(25,25,5,5)",
		Scheme: func() (*assign.Assignment, error) {
			return components.Scheme("ramanujan2", registry.SchemeParams{L: 5, R: 5})
		},
		QMin: 3, QMax: 12, BaseK: 25, BaseR: 5, GammaMu: 1.0 / 5,
	}
}

// Table5Spec: MOLS (K,f,l,r) = (35,49,7,5), q = 3..13.
func Table5Spec() TableSpec {
	return TableSpec{
		ID:    "table5",
		Title: "Distortion fraction, MOLS (K,f,l,r)=(35,49,7,5)",
		Scheme: func() (*assign.Assignment, error) {
			return components.Scheme("mols", registry.SchemeParams{L: 7, R: 5})
		},
		QMin: 3, QMax: 13, BaseK: 35, BaseR: 5, GammaMu: 1.0 / 5,
	}
}

// Table6Spec: MOLS (K,f,l,r) = (21,49,7,3), q = 2..10.
func Table6Spec() TableSpec {
	return TableSpec{
		ID:    "table6",
		Title: "Distortion fraction, MOLS (K,f,l,r)=(21,49,7,3)",
		Scheme: func() (*assign.Assignment, error) {
			return components.Scheme("mols", registry.SchemeParams{L: 7, R: 3})
		},
		QMin: 2, QMax: 10, BaseK: 21, BaseR: 3, GammaMu: 1.0 / 3,
	}
}

// TableByID dispatches a table id ("3".."6" or "table3".."table6").
func TableByID(id string) (TableSpec, error) {
	switch id {
	case "3", "table3":
		return Table3Spec(), nil
	case "4", "table4":
		return Table4Spec(), nil
	case "5", "table5":
		return Table5Spec(), nil
	case "6", "table6":
		return Table6Spec(), nil
	default:
		return TableSpec{}, fmt.Errorf("experiments: unknown table %q", id)
	}
}

// RunTable computes the table rows: exact c_max by branch-and-bound
// within budget per q (falling back to the greedy lower bound on
// timeout), plus the closed-form comparison columns. Canceling ctx
// stops the remaining searches early (finished rows degrade to the
// greedy bound).
func RunTable(ctx context.Context, spec TableSpec, budget time.Duration) ([]TableRow, error) {
	a, err := spec.Scheme()
	if err != nil {
		return nil, err
	}
	an := distort.NewAnalyzer(a)
	var rows []TableRow
	for q := spec.QMin; q <= spec.QMax; q++ {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		qctx, cancel := context.WithTimeout(ctx, budget)
		res := an.MaxDistorted(qctx, q)
		cancel()
		rows = append(rows, TableRow{
			Q:           q,
			CMax:        res.CMax,
			Exact:       res.Exact,
			EpsByz:      res.Epsilon,
			EpsBaseline: distort.EpsilonBaseline(q, spec.BaseK),
			EpsFRC:      distort.EpsilonFRC(q, spec.BaseR, spec.BaseK),
			Gamma:       distort.Gamma(q, a.L, a.R, a.K, spec.GammaMu),
		})
	}
	return rows, nil
}
