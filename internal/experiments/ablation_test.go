package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"byzshield/internal/trainer"
)

func TestAblationSchemes(t *testing.T) {
	rows, err := AblationSchemes(context.Background(), 2, 4, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 4 schemes × 3 q values.
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	byScheme := make(map[string][]AblationRow)
	for _, r := range rows {
		byScheme[r.Scheme] = append(byScheme[r.Scheme], r)
	}
	mols := byScheme["mols(5,3)"]
	frc := byScheme["frc(15,3)"]
	if len(mols) != 3 || len(frc) != 3 {
		t.Fatalf("schemes missing: %v", byScheme)
	}
	// Spectral gaps: MOLS 1/3, FRC 1 (no expansion).
	if mols[0].Mu1 > 0.34 || mols[0].Mu1 < 0.33 {
		t.Errorf("MOLS µ1 = %v", mols[0].Mu1)
	}
	if frc[0].Mu1 < 0.99 {
		t.Errorf("FRC µ1 = %v, want ≈1", frc[0].Mu1)
	}
	// Distortion: MOLS never worse than FRC at any q here, and strictly
	// better at q = 2 and 4 (Table 3 vs ε̂_FRC).
	for i := range mols {
		if mols[i].Epsilon > frc[i].Epsilon+1e-9 {
			t.Errorf("q=%d: MOLS ε̂ %v worse than FRC %v", mols[i].Q, mols[i].Epsilon, frc[i].Epsilon)
		}
	}
	if !(mols[0].Epsilon < frc[0].Epsilon) {
		t.Errorf("q=2: expected strict MOLS advantage (%v vs %v)", mols[0].Epsilon, frc[0].Epsilon)
	}
	// Ramanujan Case 1 must match MOLS c_max exactly (the paper's
	// "simulations ... were identical across the two" observation).
	ram := byScheme["ramanujan1(5,3)"]
	for i := range mols {
		if ram[i].CMax != mols[i].CMax {
			t.Errorf("q=%d: Ramanujan1 c_max %d != MOLS %d", mols[i].Q, ram[i].CMax, mols[i].CMax)
		}
	}
}

func TestRenderAblation(t *testing.T) {
	rows := []AblationRow{
		{Scheme: "mols(5,3)", Q: 2, Mu1: 1.0 / 3, CMax: 1, Exact: true, Epsilon: 0.04, Gamma: 2.11},
		{Scheme: "frc(15,3)", Q: 2, Mu1: 1, CMax: 5, Exact: false, Epsilon: 1, Gamma: 5},
	}
	var buf bytes.Buffer
	RenderAblation(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "mols(5,3)") || !strings.Contains(out, "mu1") {
		t.Errorf("rendering:\n%s", out)
	}
	if !strings.Contains(out, "5*") {
		t.Errorf("inexact marker missing:\n%s", out)
	}
}

func TestTable7Complete(t *testing.T) {
	entries := Table7()
	if len(entries) != 22 {
		t.Fatalf("Table 7 has %d entries, want 22 (paper rows)", len(entries))
	}
	figures := make(map[int]bool)
	for _, e := range entries {
		if e.Figure < 2 || e.Figure > 11 {
			t.Errorf("entry for figure %d outside 2..11", e.Figure)
		}
		figures[e.Figure] = true
		s := trainer.Schedule{Base: e.Schedule[0], Decay: e.Schedule[1], Every: int(e.Schedule[2])}
		if err := s.Validate(); err != nil {
			t.Errorf("figure %d schedule %v invalid: %v", e.Figure, e.Schedule, err)
		}
	}
	for _, f := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11} {
		if !figures[f] {
			t.Errorf("figure %d missing from Table 7", f)
		}
	}
}

func TestRenderFigurePlot(t *testing.T) {
	fig := Figure{
		ID:    "figX",
		Title: "test plot",
		Curves: []Curve{
			{Label: "a", Epsilon: 0.1, Points: []trainer.Point{
				{Iteration: 10, Accuracy: 0.2}, {Iteration: 20, Accuracy: 0.5}, {Iteration: 30, Accuracy: 0.8},
			}},
			{Label: "broken", Epsilon: 0.6, Err: "infeasible: whatever"},
		},
	}
	var buf bytes.Buffer
	RenderFigurePlot(&buf, fig, 40, 10)
	out := buf.String()
	if !strings.Contains(out, "[1] a") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "[-] broken") {
		t.Errorf("infeasible curve missing:\n%s", out)
	}
	if !strings.Contains(out, "1") {
		t.Error("no curve marks plotted")
	}
	// Degenerate sizes fall back to defaults without panicking.
	buf.Reset()
	RenderFigurePlot(&buf, fig, 1, 1)
	if buf.Len() == 0 {
		t.Error("fallback rendering empty")
	}
	// Empty figure.
	buf.Reset()
	RenderFigurePlot(&buf, Figure{ID: "e", Title: "empty"}, 40, 10)
	if !strings.Contains(buf.String(), "no feasible curves") {
		t.Error("empty figure not reported")
	}
}
