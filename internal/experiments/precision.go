package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/trainer"
	"byzshield/internal/transport"
)

// PrecisionPoint is one dim of the f64-vs-f32 scaling curve: the same
// fault-free ByzShield round (MOLS placement, vote, median aggregation,
// momentum step) timed through the float64 engine and the float32
// engine. The f32 win grows with the parameter dimension — the round is
// memory-bandwidth-bound once gradients outgrow cache, and half-width
// values move twice the coordinates per cache line.
type PrecisionPoint struct {
	// InputDim is the softmax feature dimension; ParamDim the resulting
	// parameter count (InputDim*Classes + Classes).
	InputDim int `json:"input_dim"`
	ParamDim int `json:"param_dim"`
	Rounds   int `json:"rounds"`
	// F64RoundNs / F32RoundNs are best-of-reps mean wall-clock
	// nanoseconds per post-warmup round.
	F64RoundNs int64 `json:"f64_round_ns"`
	F32RoundNs int64 `json:"f32_round_ns"`
	// Speedup is F64RoundNs / F32RoundNs.
	Speedup float64 `json:"f32_speedup"`
}

// PrecisionConfig parameterizes the precision-scaling sweep.
type PrecisionConfig struct {
	// InputDims are the softmax feature dimensions to sweep. The
	// defaults bracket the quickstart config (dim 330) through a
	// large-model regime (dim 100k+): 41, 256, 2000, 12500 at 8 classes
	// give parameter dims 336, 2056, 16008, 100008.
	InputDims []int
	// Classes sizes the softmax output (default 8).
	Classes int
	// Rounds per timed window (default 8) after Warmup (default 2).
	Rounds, Warmup int
	// Reps runs each (dim, precision) point this many times and keeps
	// the fastest (default 3).
	Reps int
	// Seed fixes the data/batch stream.
	Seed int64
	// Logf receives progress lines; nil disables.
	Logf func(format string, args ...any)
}

// precisionSpec builds the sweep's Spec for one input dim: the
// quickstart MOLS(5,3) placement with a small batch, so the round is
// kernel- and aggregation-bound, which is the regime the f32 tier
// targets.
func (c PrecisionConfig) precisionSpec(inputDim int) transport.Spec {
	return transport.Spec{
		Scheme: "mols", L: 5, R: 3,
		Aggregator: "median",
		TrainN:     256, TestN: 64,
		Dim: inputDim, Classes: c.Classes,
		DataSeed: c.Seed, ClassSep: 2.0,
		BatchSize: 50,
		Schedule:  trainer.Schedule{Base: 0.05, Decay: 0.98, Every: 50},
		Momentum:  0.9, Seed: c.Seed, Rounds: c.Rounds + c.Warmup,
	}
}

// timeRounds64 times the post-warmup rounds of the f64 engine.
func (c PrecisionConfig) timeRounds64(ctx context.Context, spec transport.Spec) (int64, error) {
	asn, err := spec.BuildAssignment()
	if err != nil {
		return 0, err
	}
	mdl, err := spec.BuildModel()
	if err != nil {
		return 0, err
	}
	train, test, err := spec.BuildData()
	if err != nil {
		return 0, err
	}
	agg, err := spec.BuildAggregator()
	if err != nil {
		return 0, err
	}
	eng, err := cluster.New(cluster.Config{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Parallelism: 1,
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	for i := 0; i < c.Warmup; i++ {
		if _, err := eng.RunRound(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < c.Rounds; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if _, err := eng.RunRound(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(c.Rounds), nil
}

// timeRounds32 times the post-warmup rounds of the f32 engine over the
// identical spec.
func (c PrecisionConfig) timeRounds32(ctx context.Context, spec transport.Spec) (int64, error) {
	asn, err := spec.BuildAssignment()
	if err != nil {
		return 0, err
	}
	mdl, err := spec.BuildModel32()
	if err != nil {
		return 0, err
	}
	train, test, err := spec.BuildData()
	if err != nil {
		return 0, err
	}
	agg, err := spec.BuildAggregator32()
	if err != nil {
		return 0, err
	}
	eng, err := cluster.New32(cluster.Config32{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Parallelism: 1,
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	for i := 0; i < c.Warmup; i++ {
		if _, err := eng.StepOnce(ctx); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < c.Rounds; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if _, err := eng.StepOnce(ctx); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(c.Rounds), nil
}

// PrecisionScaling runs the f64-vs-f32 round-time scaling curve: for
// each input dim, both precision engines execute the identical
// experiment serially (Parallelism 1, so the curve measures kernel and
// memory-system throughput, not pool scheduling) and the best-of-reps
// mean round time is recorded. The f32/f64 trajectories are pinned
// against each other by the parity and bit-identity tests; this sweep
// measures only time.
func PrecisionScaling(ctx context.Context, cfg PrecisionConfig) ([]PrecisionPoint, error) {
	if len(cfg.InputDims) == 0 {
		cfg.InputDims = []int{41, 256, 2000, 12500}
	}
	if cfg.Classes == 0 {
		cfg.Classes = 8
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 8
	}
	if cfg.Warmup < 1 {
		cfg.Warmup = 2
	}
	if cfg.Reps < 1 {
		cfg.Reps = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	best := func(f func(context.Context, transport.Spec) (int64, error), spec transport.Spec) (int64, error) {
		var min int64 = math.MaxInt64
		for rep := 0; rep < cfg.Reps; rep++ {
			ns, err := f(ctx, spec)
			if err != nil {
				return 0, err
			}
			if ns < min {
				min = ns
			}
		}
		return min, nil
	}
	var out []PrecisionPoint
	for _, dim := range cfg.InputDims {
		spec := cfg.precisionSpec(dim)
		pt := PrecisionPoint{
			InputDim: dim,
			ParamDim: dim*cfg.Classes + cfg.Classes,
			Rounds:   cfg.Rounds,
		}
		var err error
		if pt.F64RoundNs, err = best(cfg.timeRounds64, spec); err != nil {
			return nil, fmt.Errorf("precision dim %d f64: %w", dim, err)
		}
		if pt.F32RoundNs, err = best(cfg.timeRounds32, spec); err != nil {
			return nil, fmt.Errorf("precision dim %d f32: %w", dim, err)
		}
		if pt.F32RoundNs > 0 {
			pt.Speedup = float64(pt.F64RoundNs) / float64(pt.F32RoundNs)
		}
		cfg.Logf("precision dim=%-6d (params %-6d) f64=%.3fms f32=%.3fms speedup=%.2fx",
			dim, pt.ParamDim, float64(pt.F64RoundNs)/1e6, float64(pt.F32RoundNs)/1e6, pt.Speedup)
		out = append(out, pt)
	}
	return out, nil
}
