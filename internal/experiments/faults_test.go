package experiments

import (
	"context"
	"strings"
	"testing"
)

// faultSweepOpts shrinks the sweep to seconds.
func faultSweepOpts() TrainOpts {
	opts := DefaultTrainOpts()
	opts.Iterations = 30
	opts.TrainN = 400
	opts.TestN = 150
	opts.Dim = 12
	opts.ClassSep = 2.5 // separable enough for a 30-round smoke horizon
	opts.Hidden = 0
	opts.BatchSize = 100
	return opts
}

func TestFaultSweepMatrix(t *testing.T) {
	rows, err := FaultSweep(context.Background(), faultSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 schemes × 3 faults
		t.Fatalf("%d rows, want 9", len(rows))
	}
	byCell := map[string]FaultRow{}
	for _, r := range rows {
		byCell[r.Scheme+"/"+r.Fault] = r
	}

	// Fault-free cells: full participation, no degradation, training
	// reaches a sane accuracy.
	for _, scheme := range []string{"mols(5,3)", "frc(15,3)", "baseline(15)"} {
		r := byCell[scheme+"/none"]
		if r.Err != "" {
			t.Errorf("%s/none: %s", scheme, r.Err)
		}
		if r.MissingRounds != 0 || r.DegradedVotes != 0 || r.DroppedFiles != 0 {
			t.Errorf("%s/none: unexpected degradation %+v", scheme, r)
		}
		if r.Final < 0.5 {
			t.Errorf("%s/none: accuracy %.3f < 0.5", scheme, r.Final)
		}
	}

	// Replicated schemes absorb the crash with degraded votes and keep
	// training; the redundancy-free baseline must drop the crashed
	// workers' files outright (r = 1 → below any quorum).
	for _, scheme := range []string{"mols(5,3)", "frc(15,3)"} {
		r := byCell[scheme+"/crash-2"]
		if r.Err != "" {
			t.Errorf("%s/crash-2: %s", scheme, r.Err)
		}
		if r.MissingRounds == 0 || r.DegradedVotes == 0 {
			t.Errorf("%s/crash-2: no degradation recorded: %+v", scheme, r)
		}
		if r.Final < 0.5 {
			t.Errorf("%s/crash-2: accuracy %.3f < 0.5", scheme, r.Final)
		}
	}
	base := byCell["baseline(15)/crash-2"]
	if base.Err == "" && base.DroppedFiles == 0 {
		t.Errorf("baseline/crash-2: crash left no trace: %+v", base)
	}

	// Flaky cells: skips happen and training survives on replicated
	// schemes.
	flaky := byCell["mols(5,3)/flaky-3"]
	if flaky.Err != "" || flaky.MissingRounds == 0 {
		t.Errorf("mols/flaky-3: %+v", flaky)
	}
}

func TestRenderFaultSweep(t *testing.T) {
	rows := []FaultRow{{Scheme: "mols(5,3)", Fault: "crash-2", Final: 0.71, MissingRounds: 20, DegradedVotes: 100}}
	var sb strings.Builder
	RenderFaultSweep(&sb, rows)
	out := sb.String()
	for _, want := range []string{"scheme", "crash-2", "0.7100", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
