package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderTable writes a distortion table in the paper's column layout.
func RenderTable(w io.Writer, spec TableSpec, rows []TableRow) {
	fmt.Fprintf(w, "%s\n", spec.Title)
	fmt.Fprintf(w, "%3s %6s %10s %12s %8s %8s\n",
		"q", "c_max", "eps_ByzSh", "eps_Baseline", "eps_FRC", "gamma")
	for _, r := range rows {
		exactMark := ""
		if !r.Exact {
			exactMark = "*" // lower bound: search budget exhausted
		}
		fmt.Fprintf(w, "%3d %5d%1s %10.2f %12.2f %8.2f %8.2f\n",
			r.Q, r.CMax, exactMark, r.EpsByz, r.EpsBaseline, r.EpsFRC, r.Gamma)
	}
	if anyInexact(rows) {
		fmt.Fprintln(w, "(* = greedy lower bound; exhaustive search budget exhausted)")
	}
}

func anyInexact(rows []TableRow) bool {
	for _, r := range rows {
		if !r.Exact {
			return true
		}
	}
	return false
}

// RenderTableCSV writes the table rows as CSV.
func RenderTableCSV(w io.Writer, rows []TableRow) {
	fmt.Fprintln(w, "q,c_max,exact,eps_byzshield,eps_baseline,eps_frc,gamma")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%d,%v,%.6f,%.6f,%.6f,%.6f\n",
			r.Q, r.CMax, r.Exact, r.EpsByz, r.EpsBaseline, r.EpsFRC, r.Gamma)
	}
}

// RenderFigure writes a figure's accuracy series as aligned text: one
// block per curve with (iteration, accuracy) pairs, plus a final
// summary line per curve.
func RenderFigure(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "%s: %s\n", fig.ID, fig.Title)
	for _, c := range fig.Curves {
		if c.Err != "" {
			fmt.Fprintf(w, "  %-28s ε̂=%.2f  %s\n", c.Label, c.Epsilon, c.Err)
			continue
		}
		final := 0.0
		if n := len(c.Points); n > 0 {
			final = c.Points[n-1].Accuracy
		}
		fmt.Fprintf(w, "  %-28s ε̂=%.2f  final acc=%.3f  lr=%s\n",
			c.Label, c.Epsilon, final, c.Schedule)
	}
}

// RenderFigureSeries writes the full accuracy trajectories as text
// columns (iteration then one column per curve), the data behind the
// paper's line plots.
func RenderFigureSeries(w io.Writer, fig Figure) {
	var live []Curve
	for _, c := range fig.Curves {
		if c.Err == "" && len(c.Points) > 0 {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		fmt.Fprintln(w, "(no feasible curves)")
		return
	}
	fmt.Fprintf(w, "%10s", "iteration")
	for _, c := range live {
		fmt.Fprintf(w, " %24s", c.Label)
	}
	fmt.Fprintln(w)
	for i := range live[0].Points {
		fmt.Fprintf(w, "%10d", live[0].Points[i].Iteration)
		for _, c := range live {
			if i < len(c.Points) {
				fmt.Fprintf(w, " %24.4f", c.Points[i].Accuracy)
			} else {
				fmt.Fprintf(w, " %24s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderFigureCSV writes the accuracy series as CSV.
func RenderFigureCSV(w io.Writer, fig Figure) {
	fmt.Fprintln(w, "curve,epsilon,iteration,loss,accuracy")
	for _, c := range fig.Curves {
		if c.Err != "" {
			fmt.Fprintf(w, "%q,%.6f,,,%s\n", c.Label, c.Epsilon, strings.ReplaceAll(c.Err, ",", ";"))
			continue
		}
		for _, p := range c.Points {
			fmt.Fprintf(w, "%q,%.6f,%d,%.6f,%.6f\n", c.Label, c.Epsilon, p.Iteration, p.Loss, p.Accuracy)
		}
	}
}

// RenderTiming writes the Figure 12 per-iteration phase split, plus the
// measured wire volume in each direction (worker→PS gradient frames,
// both as moved by the uplink codec and raw-equivalent, and PS→worker
// parameter broadcast).
func RenderTiming(w io.Writer, rows []TimingRow) {
	fmt.Fprintf(w, "%-12s %14s %14s %14s %14s %12s %12s %8s %12s %6s %4s\n",
		"scheme", "compute/iter", "comm/iter", "agg/iter", "detect/iter", "upB/iter", "upRawB/iter", "upRatio", "downB/iter", "rep", "blk")
	for _, r := range rows {
		c, m, a, d := r.PerIteration()
		up, raw, down := r.ReportBytes, r.ReportRawBytes, r.BroadcastBytes
		if r.Rounds > 0 {
			up /= int64(r.Rounds)
			raw /= int64(r.Rounds)
			down /= int64(r.Rounds)
		}
		ratio := 1.0
		if raw > 0 {
			ratio = float64(up) / float64(raw)
		}
		fmt.Fprintf(w, "%-12s %14s %14s %14s %14s %12d %12d %8.2f %12d %6.3f %4d\n",
			r.Scheme, round(c), round(m), round(a), round(d), up, raw, ratio, down, r.MeanReputation, r.Blacklisted)
	}
}

// round truncates durations to microseconds for stable rendering.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
