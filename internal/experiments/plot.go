package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderFigurePlot draws the figure's accuracy curves as an ASCII line
// chart (iterations on x, top-1 accuracy on y), the terminal equivalent
// of the paper's matplotlib figures. Infeasible curves are listed below
// the chart.
func RenderFigurePlot(w io.Writer, fig Figure, width, height int) {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	var live []Curve
	var dead []Curve
	for _, c := range fig.Curves {
		if c.Err == "" && len(c.Points) > 0 {
			live = append(live, c)
		} else {
			dead = append(dead, c)
		}
	}
	fmt.Fprintf(w, "%s: %s\n", fig.ID, fig.Title)
	if len(live) == 0 {
		fmt.Fprintln(w, "(no feasible curves)")
		return
	}
	maxIter := 0
	for _, c := range live {
		if n := len(c.Points); n > 0 && c.Points[n-1].Iteration > maxIter {
			maxIter = c.Points[n-1].Iteration
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "1234567890"
	for ci, c := range live {
		mark := marks[ci%len(marks)]
		for _, p := range c.Points {
			x := 0
			if maxIter > 0 {
				x = (p.Iteration - 1) * (width - 1) / maxIter
			}
			y := int(p.Accuracy * float64(height-1))
			if y < 0 {
				y = 0
			}
			if y > height-1 {
				y = height - 1
			}
			row := height - 1 - y
			grid[row][x] = mark
		}
	}
	for i, row := range grid {
		yVal := float64(height-1-i) / float64(height-1)
		fmt.Fprintf(w, "%5.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(w, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "       0%siters=%d\n", strings.Repeat(" ", width-8-len(fmt.Sprint(maxIter))), maxIter)
	for ci, c := range live {
		final := c.Points[len(c.Points)-1].Accuracy
		fmt.Fprintf(w, "  [%c] %-28s ε̂=%.2f final=%.3f\n", marks[ci%len(marks)], c.Label, c.Epsilon, final)
	}
	for _, c := range dead {
		fmt.Fprintf(w, "  [-] %-28s ε̂=%.2f %s\n", c.Label, c.Epsilon, c.Err)
	}
}
