package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"slices"
	"sync"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/obs"
	"byzshield/internal/trainer"
	"byzshield/internal/transport"
	"byzshield/internal/wire"
)

// FleetMode names one aggregation-plane configuration of the scaling
// sweep.
type FleetMode struct {
	Name     string
	Shards   int
	Pipeline bool
	// Uplink is the report codec tier the server negotiates for this
	// mode (the pre-shard plane hard-wired the XOR delta codec).
	Uplink wire.UplinkTier
}

// FleetModes are the planes every sweep point runs, in order:
//
//   - single-loop: the plane as it shipped before sharding — one
//     aggregation pass over the whole vector after every report lands,
//     no round prep, and the XOR-compressed uplink (which had no
//     opt-out). This is the baseline the speedup column is relative
//     to.
//   - serial: the same single-loop plane with the raw uplink, so the
//     curve separates what the uplink codec choice buys from what the
//     sharded/pipelined plane buys.
//   - sharded / pipelined: the new plane (per-shard report streams and
//     early shard votes; plus prep pipelining), raw uplink — the
//     configuration shipped for CPU-bound loopback fleets, where the
//     delta codec's two extra passes per gradient cost more than the
//     ~2% of bytes they save.
//   - quantized: the pipelined plane on the lossy int8 uplink tier —
//     every report row ships 8-bit linear-quantized with per-(file,
//     shard) scale parameters. Its trajectory is checked bit-for-bit
//     against an in-process engine running the same tier and shard
//     count, not against the lossless reference.
func FleetModes(shards int) []FleetMode {
	return []FleetMode{
		{Name: "single-loop", Uplink: wire.TierDelta},
		{Name: "serial", Uplink: wire.TierRaw},
		{Name: "sharded", Shards: shards, Uplink: wire.TierRaw},
		{Name: "pipelined", Shards: shards, Pipeline: true, Uplink: wire.TierRaw},
		{Name: "quantized", Shards: shards, Pipeline: true, Uplink: wire.TierInt8},
	}
}

// FleetModes32 are the planes of the float32 sweep (FleetConfig's
// Precision = f32): the f32 tier has no pipeline, so the curve runs the
// serial plane (baseline), the engine-sharded plane, and the lossy int8
// uplink — each a Server32 fleet checked bit-for-bit against the
// in-process Engine32.
func FleetModes32(shards int) []FleetMode {
	return []FleetMode{
		{Name: "serial-f32", Uplink: wire.TierRaw},
		{Name: "sharded-f32", Shards: shards, Uplink: wire.TierRaw},
		{Name: "quantized-f32", Shards: shards, Uplink: wire.TierInt8},
	}
}

// FleetPoint is one (worker count, mode) measurement of the scaling
// sweep.
type FleetPoint struct {
	Workers int
	Files   int
	Mode    string
	Rounds  int
	// Elapsed covers the measured rounds only (the warmup rounds —
	// fleet join, first broadcasts — are excluded).
	Elapsed      time.Duration
	RoundsPerSec float64
	// Speedup is RoundsPerSec over the single-loop baseline (the plane
	// as configured before sharding) at the same worker count (1 for
	// the baseline itself).
	Speedup float64
	// ParamsHash fingerprints the final parameter bits (FNV-1a over
	// the IEEE-754 words); every mode at a worker count must agree,
	// and all must agree with the in-process engine.
	ParamsHash uint64
	// BitIdentical reports that this point's final parameters matched
	// the serial in-process engine bit-for-bit.
	BitIdentical bool
}

// FleetConfig parameterizes the scaling sweep.
type FleetConfig struct {
	// WorkerCounts are the loopback fleet sizes, each a multiple of 3
	// (the FRC replication). Typical: 15, 60, 240, 960.
	WorkerCounts []int
	// Rounds per point (after Warmup).
	Rounds int
	// Warmup rounds excluded from the timing window (default 2).
	Warmup int
	// Reps runs each (worker count, mode) point this many times and
	// keeps the fastest (default 3). Loopback fleets on a shared box
	// see multi-x run-to-run noise from scheduler and GC timing;
	// best-of-N measures the plane, not the neighbors. Bit-identity is
	// checked on every rep regardless.
	Reps int
	// InputDim and Classes size the softmax model: the parameter
	// dimension is InputDim*Classes + Classes. Defaults 256 and 8
	// (dim 2056).
	InputDim, Classes int
	// Shards is the shard count for the sharded/pipelined modes
	// (default 2).
	Shards int
	// Modes restricts the sweep to the named planes (default all).
	// Without "single-loop" in the set there is no baseline, so the
	// speedup column stays zero — useful when profiling one plane in
	// isolation.
	Modes []string
	// Precision selects the sweep's numeric tier: the default f64
	// protocol planes (FleetModes) or, at wire.PrecisionF32, the f32
	// planes (FleetModes32) driven over Server32/RunWorker32 and
	// bit-checked against the in-process Engine32.
	Precision wire.Precision
	// Seed fixes the data/batch stream.
	Seed int64
	// Tracer, when non-nil, receives one RoundTrace per round from every
	// point's server; the sweep labels it "mode/K=<count>" per point so a
	// JSONL sink (byzfleet -trace-out) separates the sweep's runs.
	Tracer *obs.Tracer
	// Logf receives progress lines; nil disables.
	Logf func(format string, args ...any)
}

// fleetSpec builds the sweep's Spec for one worker count: FRC(K, 3) —
// one file per worker, K/3 files — with a one-sample-per-file batch, so
// the per-round cost is wire- and plane-dominated rather than
// compute-dominated, which is the regime the sharded/pipelined plane
// targets.
func (c FleetConfig) fleetSpec(k int) transport.Spec {
	f := k / 3
	train := 4 * f
	if train < 256 {
		train = 256
	}
	return transport.Spec{
		Scheme: "frc", R: 3, K: k,
		Aggregator: "mean",
		TrainN:     train, TestN: 64,
		Dim: c.InputDim, Classes: c.Classes,
		DataSeed: c.Seed, ClassSep: 2.0,
		BatchSize: f,
		Schedule:  trainer.Schedule{Base: 0.05, Decay: 0.98, Every: 50},
		Momentum:  0.9, Seed: c.Seed, Rounds: c.Rounds + c.Warmup,
	}
}

// engineFinalParams runs the in-process engine over spec and returns
// its final parameters — the reference trajectory a wire mode must
// reproduce bit-for-bit. Lossless modes all share one reference
// (shards and codec choice cannot move a bit); a lossy mode needs the
// engine pinned to its own tier AND shard count, because lossy
// quantization happens per shard range.
func engineFinalParams(spec transport.Spec, shards int, tier wire.UplinkTier) ([]float64, error) {
	asn, err := spec.BuildAssignment()
	if err != nil {
		return nil, err
	}
	mdl, err := spec.BuildModel()
	if err != nil {
		return nil, err
	}
	train, test, err := spec.BuildData()
	if err != nil {
		return nil, err
	}
	agg, err := spec.BuildAggregator()
	if err != nil {
		return nil, err
	}
	eng, err := cluster.New(cluster.Config{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Shards: shards, UplinkTier: tier,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for i := 0; i < spec.Rounds; i++ {
		if _, err := eng.RunRound(); err != nil {
			return nil, fmt.Errorf("engine round %d: %v", i, err)
		}
	}
	out := make([]float64, len(eng.Params()))
	copy(out, eng.Params())
	return out, nil
}

// engineFinalParams32 is engineFinalParams at float32 width: the
// reference trajectory an f32 wire mode must reproduce bit-for-bit.
func engineFinalParams32(spec transport.Spec, shards int, tier wire.UplinkTier) ([]float32, error) {
	asn, err := spec.BuildAssignment()
	if err != nil {
		return nil, err
	}
	mdl, err := spec.BuildModel32()
	if err != nil {
		return nil, err
	}
	train, test, err := spec.BuildData()
	if err != nil {
		return nil, err
	}
	agg, err := spec.BuildAggregator32()
	if err != nil {
		return nil, err
	}
	eng, err := cluster.New32(cluster.Config32{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Shards: shards, UplinkTier: tier,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	ctx := context.Background()
	for i := 0; i < spec.Rounds; i++ {
		if _, err := eng.StepOnce(ctx); err != nil {
			return nil, fmt.Errorf("engine round %d: %v", i, err)
		}
	}
	return eng.Params(), nil
}

// hashParams fingerprints a parameter vector's exact bits.
func hashParams(p []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range p {
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// runFleetPoint drives one loopback fleet — K RunWorker goroutines
// sharing one SharedWorkerState against one server — and times the
// post-warmup rounds.
func (c FleetConfig) runFleetPoint(ctx context.Context, spec transport.Spec, mode FleetMode) (FleetPoint, []float64, error) {
	pt := FleetPoint{Workers: spec.K, Files: spec.K / 3, Mode: mode.Name, Rounds: c.Rounds}
	var windowStart, windowEnd time.Time
	srvCfg := transport.ServerConfig{
		Spec:         spec,
		Shards:       mode.Shards,
		Pipeline:     mode.Pipeline,
		EvalEvery:    spec.Rounds + 1,
		RoundTimeout: 5 * time.Minute,
		// Lossless modes other than single-loop run the raw uplink:
		// XOR-delta costs two full passes over every gradient per round
		// to save ~2% of bytes on decorrelated gradient data — on a
		// CPU-bound loopback fleet that codec tax dominates the profile.
		// The single-loop baseline keeps the delta codec because the
		// pre-shard plane had no opt-out; the serial mode isolates that
		// difference. The quantized mode runs the lossy int8 tier.
		Uplink:             mode.Uplink,
		FullBroadcastEvery: 1,
		Tracer:             c.Tracer,
		OnRound: func(rs cluster.RoundStats) {
			if rs.Iteration == c.Warmup-1 {
				windowStart = time.Now()
			}
			if rs.Iteration == spec.Rounds-1 {
				windowEnd = time.Now()
			}
		},
	}
	srv, err := transport.NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		return pt, nil, err
	}
	defer srv.Close()
	shared, err := transport.NewSharedWorkerState(spec)
	if err != nil {
		return pt, nil, err
	}
	var wg sync.WaitGroup
	workerErr := make(chan error, spec.K)
	for u := 0; u < spec.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, err := transport.RunWorker(ctx, srv.Addr(), transport.WorkerConfig{
				ID: u, Shared: shared, ReconnectAttempts: -1,
			})
			if err != nil {
				workerErr <- fmt.Errorf("worker %d: %w", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(ctx); err != nil {
		srv.Close()
		wg.Wait()
		return pt, nil, err
	}
	wg.Wait()
	select {
	case err := <-workerErr:
		return pt, nil, err
	default:
	}
	if windowStart.IsZero() || windowEnd.IsZero() {
		return pt, nil, fmt.Errorf("fleet %s K=%d: timing window never closed", mode.Name, spec.K)
	}
	pt.Elapsed = windowEnd.Sub(windowStart)
	if pt.Elapsed > 0 {
		pt.RoundsPerSec = float64(c.Rounds) / pt.Elapsed.Seconds()
	}
	params := make([]float64, len(srv.Params()))
	copy(params, srv.Params())
	pt.ParamsHash = hashParams(params)
	return pt, params, nil
}

// hashParams32 fingerprints an f32 parameter vector's exact bits.
func hashParams32(p []float32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range p {
		bits := math.Float32bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// runFleetPoint32 drives one f32 loopback fleet — K RunWorker32
// goroutines against one Server32 — and times the post-warmup rounds.
func (c FleetConfig) runFleetPoint32(ctx context.Context, spec transport.Spec, mode FleetMode) (FleetPoint, []float32, error) {
	pt := FleetPoint{Workers: spec.K, Files: spec.K / 3, Mode: mode.Name, Rounds: c.Rounds}
	var windowStart, windowEnd time.Time
	srv, err := transport.NewServer32("127.0.0.1:0", transport.ServerConfig32{
		Spec:               spec,
		Shards:             mode.Shards,
		EvalEvery:          spec.Rounds + 1,
		RoundTimeout:       5 * time.Minute,
		Uplink:             mode.Uplink,
		FullBroadcastEvery: 1,
		OnRound: func(rs cluster.RoundStats) {
			if rs.Iteration == c.Warmup-1 {
				windowStart = time.Now()
			}
			if rs.Iteration == spec.Rounds-1 {
				windowEnd = time.Now()
			}
		},
	})
	if err != nil {
		return pt, nil, err
	}
	defer srv.Close()
	var wg sync.WaitGroup
	workerErr := make(chan error, spec.K)
	for u := 0; u < spec.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, err := transport.RunWorker32(ctx, srv.Addr(), transport.WorkerConfig32{
				ID: u, ReconnectAttempts: -1,
			})
			if err != nil {
				workerErr <- fmt.Errorf("worker %d: %w", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(ctx); err != nil {
		srv.Close()
		wg.Wait()
		return pt, nil, err
	}
	wg.Wait()
	select {
	case err := <-workerErr:
		return pt, nil, err
	default:
	}
	if windowStart.IsZero() || windowEnd.IsZero() {
		return pt, nil, fmt.Errorf("fleet %s K=%d: timing window never closed", mode.Name, spec.K)
	}
	pt.Elapsed = windowEnd.Sub(windowStart)
	if pt.Elapsed > 0 {
		pt.RoundsPerSec = float64(c.Rounds) / pt.Elapsed.Seconds()
	}
	params := srv.Params()
	pt.ParamsHash = hashParams32(params)
	return pt, params, nil
}

// fleetScaling32 is the f32 branch of FleetScaling: the FleetModes32
// planes over Server32 fleets, each rep bit-checked against the
// in-process Engine32 pinned to the mode's shard count and uplink tier
// (f32 quantization, like f64's, happens per shard range).
func fleetScaling32(ctx context.Context, cfg FleetConfig) ([]FleetPoint, error) {
	var out []FleetPoint
	for _, k := range cfg.WorkerCounts {
		if k < 3 || k%3 != 0 {
			return nil, fmt.Errorf("fleet: worker count %d is not a positive multiple of 3 (FRC r=3)", k)
		}
		spec := cfg.fleetSpec(k)
		var baseline float64
		for _, mode := range FleetModes32(cfg.Shards) {
			if len(cfg.Modes) > 0 && !slices.Contains(cfg.Modes, mode.Name) {
				continue
			}
			ref, err := engineFinalParams32(spec, mode.Shards, mode.Uplink)
			if err != nil {
				return nil, fmt.Errorf("fleet %s K=%d reference: %w", mode.Name, k, err)
			}
			var pt FleetPoint
			allIdentical := true
			for rep := 0; rep < cfg.Reps; rep++ {
				runtime.GC()
				rp, params, err := cfg.runFleetPoint32(ctx, spec, mode)
				if err != nil {
					return nil, fmt.Errorf("fleet %s K=%d: %w", mode.Name, k, err)
				}
				identical := len(params) == len(ref)
				for i := range ref {
					if math.Float32bits(params[i]) != math.Float32bits(ref[i]) {
						identical = false
						break
					}
				}
				allIdentical = allIdentical && identical
				if rep == 0 || rp.RoundsPerSec > pt.RoundsPerSec {
					pt = rp
				}
			}
			pt.BitIdentical = allIdentical
			if mode.Name == "serial-f32" {
				baseline = pt.RoundsPerSec
			}
			if baseline > 0 {
				pt.Speedup = pt.RoundsPerSec / baseline
			}
			cfg.Logf("fleet K=%d mode=%-13s %6.2f rounds/s (%.2fx) bit-identical=%v",
				k, mode.Name, pt.RoundsPerSec, pt.Speedup, pt.BitIdentical)
			out = append(out, pt)
		}
	}
	return out, nil
}

// FleetScaling runs the rounds/sec-vs-worker-count scaling sweep: for
// each worker count, the single-loop (pre-shard config), serial,
// sharded, sharded+pipelined, and quantized planes drive the same
// loopback fleet over the identical Spec, and every mode's final
// parameters are checked bit-for-bit against an in-process engine —
// the lossless modes against one shared reference (raw and delta
// codecs are bit-exact, so all four must land on the same bits), the
// quantized mode against an engine pinned to its own uplink tier and
// shard count. The returned points are grouped by worker count in mode
// order (single-loop first).
func FleetScaling(ctx context.Context, cfg FleetConfig) ([]FleetPoint, error) {
	if cfg.Rounds < 1 {
		cfg.Rounds = 20
	}
	if cfg.Warmup < 1 {
		cfg.Warmup = 2
	}
	if cfg.Reps < 1 {
		cfg.Reps = 3
	}
	if cfg.InputDim == 0 {
		cfg.InputDim = 256
	}
	if cfg.Classes == 0 {
		cfg.Classes = 8
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.WorkerCounts) == 0 {
		cfg.WorkerCounts = []int{15, 60, 240}
	}
	if cfg.Precision == wire.PrecisionF32 {
		return fleetScaling32(ctx, cfg)
	}
	var out []FleetPoint
	for _, k := range cfg.WorkerCounts {
		if k < 3 || k%3 != 0 {
			return nil, fmt.Errorf("fleet: worker count %d is not a positive multiple of 3 (FRC r=3)", k)
		}
		spec := cfg.fleetSpec(k)
		losslessRef, err := engineFinalParams(spec, 0, wire.TierDelta)
		if err != nil {
			return nil, err
		}
		var baseline float64
		for _, mode := range FleetModes(cfg.Shards) {
			if len(cfg.Modes) > 0 && !slices.Contains(cfg.Modes, mode.Name) {
				continue
			}
			if cfg.Tracer != nil {
				cfg.Tracer.SetLabel(fmt.Sprintf("%s/K=%d", mode.Name, k))
			}
			ref := losslessRef
			if mode.Uplink.Lossy() {
				// A lossy mode's reference engine must quantize at the
				// same granularity the wire does: same tier, same shards.
				if ref, err = engineFinalParams(spec, mode.Shards, mode.Uplink); err != nil {
					return nil, fmt.Errorf("fleet %s K=%d reference: %w", mode.Name, k, err)
				}
			}
			var pt FleetPoint
			allIdentical := true
			for rep := 0; rep < cfg.Reps; rep++ {
				// Settle the heap between reps so one point's garbage
				// (thousands of conn buffers) is not collected inside the
				// next point's timing window.
				runtime.GC()
				rp, params, err := cfg.runFleetPoint(ctx, spec, mode)
				if err != nil {
					return nil, fmt.Errorf("fleet %s K=%d: %w", mode.Name, k, err)
				}
				identical := len(params) == len(ref)
				for i := range ref {
					if math.Float64bits(params[i]) != math.Float64bits(ref[i]) {
						identical = false
						break
					}
				}
				allIdentical = allIdentical && identical
				if rep == 0 || rp.RoundsPerSec > pt.RoundsPerSec {
					pt = rp
				}
			}
			pt.BitIdentical = allIdentical
			if mode.Name == "single-loop" {
				baseline = pt.RoundsPerSec
			}
			if baseline > 0 {
				pt.Speedup = pt.RoundsPerSec / baseline
			}
			cfg.Logf("fleet K=%d mode=%-9s %6.2f rounds/s (%.2fx) bit-identical=%v",
				k, mode.Name, pt.RoundsPerSec, pt.Speedup, pt.BitIdentical)
			out = append(out, pt)
		}
	}
	return out, nil
}
