// Package experiments defines one runnable configuration per table and
// figure of the paper's evaluation (Tables 3–6, Figures 2–12) and the
// shared machinery to execute them: dataset/model construction,
// worst-case Byzantine selection, pipeline assembly (ByzShield, DETOX,
// baseline), and rendering of the resulting series.
//
// Every experiment is deterministic given its options, and scaled-down
// defaults keep the full suite runnable on a laptop; the cmd tools
// expose flags for full-size runs.
package experiments

import (
	"context"
	"fmt"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/cluster"
	"byzshield/internal/data"
	"byzshield/internal/distort"
	"byzshield/internal/model"
	"byzshield/internal/registry"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

// components is the shared process-wide catalog all experiment
// definitions resolve scheme names through.
var components = registry.Default

// TrainOpts are the knobs shared by all training experiments. The zero
// value is not usable; start from DefaultTrainOpts.
type TrainOpts struct {
	Iterations int
	EvalEvery  int
	TrainN     int
	TestN      int
	Dim        int
	Classes    int
	ClassSep   float64
	BatchSize  int
	Hidden     int // 0 = softmax regression; > 0 = MLP hidden width
	Seed       int64
	// SearchBudget bounds the worst-case Byzantine search per run.
	SearchBudget time.Duration
	// Detector names the registry detector the PS runs during timed
	// experiments ("" or "none" = detection off) — how the timing suite
	// measures the detection layer's overhead.
	Detector string
	// Uplink is the worker→PS report codec tier the timing suite
	// measures (raw, delta, or the lossy sign/int8 quantized tiers);
	// the zero value is the delta default.
	Uplink wire.UplinkTier
	// Distribution names the registry data distribution the training
	// cells sample batches under ("" or "iid" = homogeneous);
	// DistParam is its knob (dirichlet alpha / label-skew shard count).
	Distribution string
	DistParam    float64
}

// distribution resolves the named data distribution ("", "iid" → nil:
// the default reshuffling sampler).
func (o TrainOpts) distribution() (data.Distributor, error) {
	if o.Distribution == "" || o.Distribution == "iid" {
		return nil, nil
	}
	return components.Distribution(o.Distribution, registry.DistributionParams{
		Alpha: o.DistParam, Shards: int(o.DistParam), Seed: o.Seed,
	})
}

// DefaultTrainOpts returns laptop-scale defaults: a 10-class synthetic
// task (mirroring CIFAR-10's class count) that a clean run solves to
// ≈75% accuracy, trained with a small ReLU MLP — nonlinear, like the
// paper's ResNet-18, so that ALIE's per-coordinate bias actually
// degrades the model (it is argmax-invariant for pure softmax).
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{
		Iterations:   300,
		EvalEvery:    25,
		TrainN:       3000,
		TestN:        1000,
		Dim:          24,
		Classes:      10,
		ClassSep:     0.5,
		BatchSize:    500,
		Hidden:       24,
		Seed:         42,
		SearchBudget: 10 * time.Second,
	}
}

// Pipeline names a defense pipeline from the paper's legends.
type Pipeline string

// Pipelines under evaluation.
const (
	PipelineByzShield Pipeline = "byzshield" // expander assignment + vote + aggregator
	PipelineDETOX     Pipeline = "detox"     // FRC assignment + vote + aggregator
	PipelineBaseline  Pipeline = "baseline"  // no redundancy + aggregator
)

// RunSpec describes one curve of a figure.
type RunSpec struct {
	// Label is the curve's legend entry, e.g. "ByzShield, q = 5".
	Label    string
	Pipeline Pipeline
	// Scheme builds the assignment for the pipeline (nil uses the
	// pipeline default for the given K).
	Scheme func() (*assign.Assignment, error)
	// K is the cluster size (used for baseline/FRC construction).
	K int
	// R is the replication factor for DETOX's FRC.
	R int
	// Q is the number of Byzantine workers.
	Q int
	// Attack generates the Byzantine payloads.
	Attack attack.Attack
	// Aggregator is the post-vote aggregation rule. When nil it is
	// derived per pipeline: median for ByzShield/baseline.
	Aggregator aggregate.Aggregator
	// AggregatorFor, when non-nil, builds the aggregator from the
	// realized worst-case corruption count c (needed by Krum-family
	// rules whose parameters depend on c).
	AggregatorFor func(c int) aggregate.Aggregator
	// SignMessages selects the signSGD transport.
	SignMessages bool
	// Schedule overrides the default learning-rate schedule.
	Schedule *trainer.Schedule
	// Momentum overrides the default momentum (NaN-free default 0.9).
	Momentum *float64
}

// Curve is the executed result of a RunSpec.
type Curve struct {
	Label    string
	Epsilon  float64 // realized distortion fraction ε̂
	Points   []trainer.Point
	Err      string // non-empty when the pipeline is infeasible or failed
	Times    cluster.PhaseTimes
	Rounds   int
	Schedule trainer.Schedule
}

// Figure is a set of curves sharing axes, mirroring one paper figure.
type Figure struct {
	ID     string
	Title  string
	Curves []Curve
}

// buildAssignment realizes the RunSpec's assignment: an explicit Scheme
// closure wins, otherwise the pipeline default is resolved through the
// component registry.
func buildAssignment(spec *RunSpec) (*assign.Assignment, error) {
	if spec.Scheme != nil {
		return spec.Scheme()
	}
	switch spec.Pipeline {
	case PipelineBaseline:
		return components.Scheme("baseline", registry.SchemeParams{K: spec.K})
	case PipelineDETOX:
		return components.Scheme("frc", registry.SchemeParams{K: spec.K, R: spec.R})
	default:
		return nil, fmt.Errorf("experiments: pipeline %q needs an explicit Scheme", spec.Pipeline)
	}
}

// selectByzantines picks the worst-case Byzantine set for the
// assignment, the paper's omniscient adversary placement. The search
// runs under ctx bounded by budget.
func selectByzantines(ctx context.Context, a *assign.Assignment, q int, budget time.Duration) ([]int, int) {
	if q == 0 {
		return nil, 0
	}
	an := distort.NewAnalyzer(a)
	sctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	res := an.MaxDistorted(sctx, q)
	return res.Byzantines, res.CMax
}

// defaultSchedule is the median-pipeline schedule used unless the spec
// overrides it (Table 7 uses per-figure tuning; one robust default keeps
// the scaled-down reproduction comparable across curves).
var defaultSchedule = trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 25}

// signSGDSchedule is the smaller rate used by the sign pipelines.
var signSGDSchedule = trainer.Schedule{Base: 0.005, Decay: 0.9, Every: 50}

// RunOne executes a single RunSpec under ctx and returns its curve.
// Cancellation surfaces as a curve error with the partial point series.
func RunOne(ctx context.Context, spec RunSpec, opts TrainOpts) Curve {
	curve := Curve{Label: spec.Label}
	asn, err := buildAssignment(&spec)
	if err != nil {
		curve.Err = err.Error()
		return curve
	}
	byz, cmax := selectByzantines(ctx, asn, spec.Q, opts.SearchBudget)
	curve.Epsilon = float64(cmax) / float64(asn.F)

	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: opts.TrainN, Test: opts.TestN, Dim: opts.Dim,
		Classes: opts.Classes, ClassSep: opts.ClassSep, Seed: opts.Seed,
	})
	if err != nil {
		curve.Err = err.Error()
		return curve
	}
	var mdl model.Model
	if opts.Hidden > 0 {
		mdl, err = model.NewMLP(opts.Dim, opts.Hidden, opts.Classes)
	} else {
		mdl, err = model.NewSoftmax(opts.Dim, opts.Classes)
	}
	if err != nil {
		curve.Err = err.Error()
		return curve
	}

	agg := spec.Aggregator
	if agg == nil && spec.AggregatorFor != nil {
		agg = spec.AggregatorFor(cmax)
	}
	if agg == nil {
		agg = aggregate.Median{}
	}
	schedule := defaultSchedule
	if spec.SignMessages {
		schedule = signSGDSchedule
	}
	if spec.Schedule != nil {
		schedule = *spec.Schedule
	}
	curve.Schedule = schedule
	momentum := 0.9
	if spec.Momentum != nil {
		momentum = *spec.Momentum
	}

	atk := spec.Attack
	if atk == nil {
		atk = attack.Benign{}
	}

	eng, err := cluster.New(cluster.Config{
		Assignment:   asn,
		Model:        mdl,
		Train:        train,
		Test:         test,
		BatchSize:    opts.BatchSize,
		Attack:       atk,
		Byzantines:   byz,
		Aggregator:   agg,
		Schedule:     schedule,
		Momentum:     momentum,
		Seed:         opts.Seed,
		SignMessages: spec.SignMessages,
	})
	if err != nil {
		curve.Err = err.Error()
		return curve
	}
	defer eng.Close()
	if err := eng.CheckFeasible(); err != nil {
		// Mirror the paper's "cannot be paired" findings rather than
		// running an invalid configuration.
		curve.Err = "infeasible: " + err.Error()
		return curve
	}
	h, err := eng.Run(ctx, opts.Iterations, opts.EvalEvery)
	curve.Points = h.Points
	curve.Times = eng.Times()
	curve.Rounds = opts.Iterations
	if err != nil {
		curve.Err = err.Error()
	}
	return curve
}

// RunFigure executes all curves of a figure definition under ctx.
func RunFigure(ctx context.Context, id, title string, specs []RunSpec, opts TrainOpts) Figure {
	fig := Figure{ID: id, Title: title}
	for _, spec := range specs {
		fig.Curves = append(fig.Curves, RunOne(ctx, spec, opts))
	}
	return fig
}
