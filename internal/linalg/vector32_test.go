package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The float32 kernel instantiations must track their float64 twins to
// within single-precision rounding: the f32 tier is a different
// trajectory by design, but each individual kernel result may only
// differ by accumulated unit-roundoff, not by algorithmic divergence.
// The tolerance scales with the accumulation length (each of n
// additions contributes up to half an ulp of the running magnitude).

// relTol32 is the per-operation relative tolerance budget for an
// n-term float32 accumulation over values of magnitude ~scale.
func relTol32(n int) float64 { return float64(n) * 4 * 1.2e-7 }

func randVecs(rng *rand.Rand, n, d int, scale float64) ([][]float64, [][]float32) {
	v64 := make([][]float64, n)
	v32 := make([][]float32, n)
	for i := range v64 {
		v64[i] = make([]float64, d)
		v32[i] = make([]float32, d)
		for j := range v64[i] {
			x := rng.NormFloat64() * scale
			v64[i][j] = x
			v32[i][j] = float32(x)
		}
	}
	return v64, v32
}

// checkClose verifies |got−want| within tol relative to the result
// magnitude plus the accumulation's term scale — cancellation makes
// the absolute error scale with the terms, not the result.
func checkClose(t *testing.T, kernel string, i int, got float32, want, tol, scale float64) {
	t.Helper()
	diff := math.Abs(float64(got) - want)
	bound := tol * (math.Abs(want) + scale)
	if diff > bound {
		t.Fatalf("%s[%d]: f32=%v f64=%v diff=%g > %g", kernel, i, got, want, diff, bound)
	}
}

// TestKernelParity32 is the f32-vs-f64 parity property test: every
// generic kernel's float32 instantiation must agree with the float64
// one within a tolerance bounded by single-precision accumulation
// error, across random vector sets of varying shape.
func TestKernelParity32(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(12)
		d := 1 + rng.Intn(200)
		scale := math.Pow(10, float64(rng.Intn(5)-2))
		v64, v32 := randVecs(rng, n, d, scale)
		tol := relTol32(n)
		// Gaussian terms reach a few standard deviations.
		termScale := 5 * scale

		m64 := MeanVecInto(make([]float64, d), v64)
		m32 := MeanVecInto(make([]float32, d), v32)
		for i := range m64 {
			checkClose(t, "mean", i, m32[i], m64[i], tol, termScale)
		}

		s64 := StdVecInto(make([]float64, d), m64, v64)
		s32 := StdVecInto(make([]float32, d), m32, v32)
		for i := range s64 {
			checkClose(t, "std", i, s32[i], s64[i], 2*tol, termScale)
		}

		col64 := make([]float64, n)
		col32 := make([]float32, n)
		for i := 0; i < d; i++ {
			for j := 0; j < n; j++ {
				col64[j] = v64[j][i]
				col32[j] = v32[j][i]
			}
			checkClose(t, "median", i, MedianOf(col32), MedianOf(col64), tol, termScale)
			if n >= 3 {
				checkClose(t, "trimmed-mean", i,
					TrimmedMeanOf(col32, 1), TrimmedMeanOf(col64, 1), tol, termScale)
			}
		}

		a64, b64 := v64[0], v64[1]
		a32, b32 := v32[0], v32[1]
		checkClose(t, "dot", 0, Dot(a32, b32), Dot(a64, b64), relTol32(d), float64(d)*termScale*termScale)

		ax64 := CloneVec(a64)
		ax32 := CloneVec(a32)
		AxpyInPlace(ax64, 0.25, b64)
		AxpyInPlace(ax32, 0.25, b32)
		for i := range ax64 {
			checkClose(t, "axpy", i, ax32[i], ax64[i], tol, termScale)
		}

		ScaleInPlace(ax64, 3)
		ScaleInPlace(ax32, 3)
		for i := range ax64 {
			checkClose(t, "scale", i, ax32[i], ax64[i], tol, 3*termScale)
		}
	}
}

// TestFloat64KernelsUnchanged pins the float64 instantiations to the
// pre-generic reference computations operation for operation — the
// refactor to generic kernels must not move a single f64 bit.
func TestFloat64KernelsUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, d := 7, 129 // odd dim exercises the 4-wide tail
	vs, _ := randVecs(rng, n, d, 1)

	mean := MeanVecInto(make([]float64, d), vs)
	for i := 0; i < d; i++ {
		var s float64
		for _, v := range vs {
			s += v[i]
		}
		want := s * (1 / float64(n))
		if math.Float64bits(mean[i]) != math.Float64bits(want) {
			t.Fatalf("mean[%d]: got %x want %x", i, math.Float64bits(mean[i]), math.Float64bits(want))
		}
	}

	std := StdVecInto(make([]float64, d), mean, vs)
	for i := 0; i < d; i++ {
		var s float64
		for _, v := range vs {
			diff := v[i] - mean[i]
			s += diff * diff
		}
		want := math.Sqrt(s * (1 / float64(n)))
		if math.Float64bits(std[i]) != math.Float64bits(want) {
			t.Fatalf("std[%d]: got %x want %x", i, math.Float64bits(std[i]), math.Float64bits(want))
		}
	}
}
