package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("NewMatrix(3,4) shape wrong: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("NewMatrix not zeroed")
		}
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Error("element values wrong")
	}
}

func TestNewMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewMatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(4)[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := NewMatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 0) {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if !a.Mul(Identity(3)).Equal(a, 0) {
		t.Error("A*I != A")
	}
	if !Identity(2).Mul(a).Equal(a, 0) {
		t.Error("I*A != A")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Error("transpose values wrong")
	}
	if !at.Transpose().Equal(a, 0) {
		t.Error("double transpose != original")
	}
}

func TestGramMatchesExplicitProduct(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {0, -1, 4}})
	gram := a.Gram()
	explicit := a.Mul(a.Transpose())
	if !gram.Equal(explicit, 1e-12) {
		t.Errorf("Gram != A*Aᵀ:\n%v\nvs\n%v", gram, explicit)
	}
	if !gram.IsSymmetric(0) {
		t.Error("Gram not symmetric")
	}
}

func TestRowColSums(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 0, 1}, {0, 1, 1}})
	rs := a.RowSums()
	cs := a.ColSums()
	if rs[0] != 2 || rs[1] != 2 {
		t.Errorf("RowSums = %v", rs)
	}
	if cs[0] != 1 || cs[1] != 1 || cs[2] != 2 {
		t.Errorf("ColSums = %v", cs)
	}
}

func TestRowColCopies(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) == 99 {
		t.Error("Row returned a view, want copy")
	}
	c := a.Col(1)
	c[0] = 98
	if a.At(0, 1) == 98 {
		t.Error("Col returned a view, want copy")
	}
}

func TestScaleAndClone(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Scale(2)
	if a.At(0, 0) != 1 {
		t.Error("Scale on clone mutated original")
	}
	if b.At(1, 1) != 8 {
		t.Errorf("Scale: got %v, want 8", b.At(1, 1))
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Errorf("eigen[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("eigen = %v, want [3 1]", vals)
	}
}

func TestSymmetricEigenAllOnes(t *testing.T) {
	// J_n has eigenvalues n (once) and 0 (n-1 times).
	n := 6
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = 1
	}
	vals, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-float64(n)) > 1e-9 {
		t.Errorf("largest eigen of J_%d = %v, want %d", n, vals[0], n)
	}
	for i := 1; i < n; i++ {
		if math.Abs(vals[i]) > 1e-9 {
			t.Errorf("eigen[%d] = %v, want 0", i, vals[i])
		}
	}
}

func TestSymmetricEigenTraceInvariant(t *testing.T) {
	m := NewMatrixFromRows([][]float64{
		{4, 1, 0.5, -1},
		{1, 3, 2, 0},
		{0.5, 2, 5, 1.5},
		{-1, 0, 1.5, 2},
	})
	vals, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	var trace, sum float64
	for i := 0; i < 4; i++ {
		trace += m.At(i, i)
	}
	for _, v := range vals {
		sum += v
	}
	if math.Abs(trace-sum) > 1e-9 {
		t.Errorf("eigen sum %v != trace %v", sum, trace)
	}
}

func TestSymmetricEigenRejectsNonSymmetric(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymmetricEigen(m); err == nil {
		t.Error("non-symmetric matrix accepted")
	}
	if _, err := SymmetricEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestSingularValuesKnown(t *testing.T) {
	// diag-ish rectangular matrix: singular values are 3 and 2.
	m := NewMatrixFromRows([][]float64{{3, 0, 0}, {0, 2, 0}})
	sv, err := SingularValues(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sv[0]-3) > 1e-9 || math.Abs(sv[1]-2) > 1e-9 {
		t.Errorf("singular values = %v, want [3 2]", sv)
	}
}

func TestSingularValuesTransposeInvariant(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 0}, {0, 1, 1}})
	a, err := SingularValues(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingularValues(m.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Errorf("sv mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGroupEigenvalues(t *testing.T) {
	vals := []float64{1.0, 0.3333333333, 0.3333333334, 0.3333333332, 0, 1e-13}
	groups := GroupEigenvalues(vals, 1e-6)
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 groups", groups)
	}
	if groups[0].Multiplicity != 1 || math.Abs(groups[0].Value-1) > 1e-9 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if groups[1].Multiplicity != 3 || math.Abs(groups[1].Value-1.0/3) > 1e-6 {
		t.Errorf("group 1 = %+v", groups[1])
	}
	if groups[2].Multiplicity != 2 || math.Abs(groups[2].Value) > 1e-6 {
		t.Errorf("group 2 = %+v", groups[2])
	}
	if GroupEigenvalues(nil, 1e-6) != nil {
		t.Error("empty input should return nil")
	}
}

// Property: the Gram matrix of any matrix has non-negative eigenvalues
// (positive semidefiniteness) and its trace equals the squared Frobenius
// norm of the original.
func TestQuickGramPSD(t *testing.T) {
	prop := func(raw [6]float64) bool {
		m := NewMatrixFromRows([][]float64{
			{clampF(raw[0]), clampF(raw[1]), clampF(raw[2])},
			{clampF(raw[3]), clampF(raw[4]), clampF(raw[5])},
		})
		g := m.Gram()
		vals, err := SymmetricEigen(g)
		if err != nil {
			return false
		}
		var frob float64
		for _, v := range m.Data {
			frob += v * v
		}
		var sum float64
		for _, v := range vals {
			if v < -1e-8*math.Max(1, frob) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-frob) <= 1e-6*math.Max(1, frob)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// clampF maps arbitrary float64s (incl. NaN/Inf from quick) to [-10, 10].
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 10)
}

func BenchmarkGram25(b *testing.B) {
	m := NewMatrix(25, 25)
	for i := range m.Data {
		m.Data[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Gram()
	}
}

func BenchmarkSymmetricEigen25(b *testing.B) {
	m := NewMatrix(25, 25)
	for i := 0; i < 25; i++ {
		for j := 0; j <= i; j++ {
			v := float64((i*j)%5) + 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymmetricEigen(m); err != nil {
			b.Fatal(err)
		}
	}
}
