package linalg

import (
	"math"
	"testing"
)

func TestPowerIterationDiagonal(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{5, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	val, vec, err := PowerIteration(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-5) > 1e-9 {
		t.Errorf("dominant eigenvalue = %v, want 5", val)
	}
	if math.Abs(math.Abs(vec[0])-1) > 1e-6 {
		t.Errorf("dominant eigenvector = %v, want ±e0", vec)
	}
}

func TestPowerIterationMatchesJacobi(t *testing.T) {
	m := NewMatrixFromRows([][]float64{
		{4, 1, 0.5},
		{1, 3, 2},
		{0.5, 2, 5},
	})
	val, _, err := PowerIteration(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-eig[0]) > 1e-8 {
		t.Errorf("power %v vs jacobi %v", val, eig[0])
	}
}

func TestPowerIterationErrors(t *testing.T) {
	if _, _, err := PowerIteration(NewMatrix(2, 3), 0, 0); err == nil {
		t.Error("non-square accepted")
	}
	if _, _, err := PowerIteration(NewMatrix(0, 0), 0, 0); err == nil {
		t.Error("empty accepted")
	}
}

func TestSecondEigenvaluePSDKnown(t *testing.T) {
	// J_4/4 has eigenvalues 1 (uniform vector) and 0 (×3).
	n := 4
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = 0.25
	}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1
	}
	mu1, err := SecondEigenvaluePSD(m, 1, uniform, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu1) > 1e-9 {
		t.Errorf("µ1 = %v, want 0", mu1)
	}
}

func TestSecondEigenvaluePSDMatchesJacobi(t *testing.T) {
	// Build a PSD matrix with a known dominant pair: A = Gram of a
	// structured matrix, dominant pair from power iteration.
	base := NewMatrixFromRows([][]float64{
		{1, 2, 0, 1},
		{0, 1, 3, 1},
		{2, 0, 1, 1},
		{1, 1, 1, 0},
	})
	m := base.Gram()
	top, topVec, err := PowerIteration(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu1, err := SecondEigenvaluePSD(m, top, topVec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu1-eig[1]) > 1e-6 {
		t.Errorf("deflated power µ1 = %v vs jacobi %v", mu1, eig[1])
	}
}

func TestSecondEigenvaluePSDErrors(t *testing.T) {
	m := NewMatrix(2, 2)
	if _, err := SecondEigenvaluePSD(NewMatrix(2, 3), 1, []float64{1, 1}, 0, 0); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := SecondEigenvaluePSD(m, 1, []float64{1}, 0, 0); err == nil {
		t.Error("wrong vector dim accepted")
	}
}
