package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymmetricEigen computes all eigenvalues of a symmetric matrix using the
// cyclic Jacobi rotation method. The returned eigenvalues are sorted in
// decreasing order. Jacobi is quadratically convergent and, for the small
// co-assignment matrices that arise from task-assignment graphs
// (K ≤ a few hundred), both fast and numerically robust.
func SymmetricEigen(m *Matrix) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: eigen of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	if !m.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("linalg: eigen of non-symmetric matrix")
	}
	n := m.Rows
	if n == 0 {
		return nil, nil
	}
	a := m.Clone()
	const maxSweeps = 100
	const tol = 1e-12
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagonalNorm(a)
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				// Compute the Jacobi rotation that zeroes a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(a, p, q, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return vals, nil
}

// applyJacobiRotation performs A <- Jᵀ A J where J rotates coordinates
// (p, q) by angle with cosine c and sine s, preserving symmetry.
func applyJacobiRotation(a *Matrix, p, q int, c, s float64) {
	n := a.Rows
	for k := 0; k < n; k++ {
		if k == p || k == q {
			continue
		}
		akp := a.At(k, p)
		akq := a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(p, k, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
		a.Set(q, k, s*akp+c*akq)
	}
	app := a.At(p, p)
	aqq := a.At(q, q)
	apq := a.At(p, q)
	a.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	a.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	a.Set(p, q, 0)
	a.Set(q, p, 0)
}

// offDiagonalNorm returns the Frobenius norm of the off-diagonal part.
func offDiagonalNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j {
				v := a.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

// SingularValues returns the singular values of m (decreasing order),
// computed as the square roots of the eigenvalues of the smaller Gram
// matrix. Small negative eigenvalues produced by roundoff are clamped to
// zero before the square root.
func SingularValues(m *Matrix) ([]float64, error) {
	var gram *Matrix
	if m.Rows <= m.Cols {
		gram = m.Gram()
	} else {
		gram = m.Transpose().Gram()
	}
	eig, err := SymmetricEigen(gram)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(eig))
	for i, v := range eig {
		if v < 0 {
			v = 0
		}
		out[i] = math.Sqrt(v)
	}
	return out, nil
}

// EigenvalueMultiplicity groups eigenvalues that are equal up to tol and
// returns (value, multiplicity) pairs sorted by decreasing value. The
// representative value of each group is the group mean, which suppresses
// roundoff jitter when comparing against exact rational spectra such as
// those of Lemma 2.
type EigenvalueMultiplicity struct {
	Value        float64
	Multiplicity int
}

// GroupEigenvalues clusters a sorted-or-unsorted eigenvalue slice into
// (value, multiplicity) groups with tolerance tol.
func GroupEigenvalues(vals []float64, tol float64) []EigenvalueMultiplicity {
	if len(vals) == 0 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var groups []EigenvalueMultiplicity
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || math.Abs(sorted[i]-sorted[start]) > tol {
			var sum float64
			for _, v := range sorted[start:i] {
				sum += v
			}
			groups = append(groups, EigenvalueMultiplicity{
				Value:        sum / float64(i-start),
				Multiplicity: i - start,
			})
			start = i
		}
	}
	return groups
}
