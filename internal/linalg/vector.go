package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Vector helpers. Vectors are plain []float64; functions that combine a
// set of vectors require equal lengths and panic otherwise, mirroring the
// hard precondition that all gradient vectors in a round share the model
// dimension.

// checkSameLen panics unless all vectors share one length, returning it.
func checkSameLen(vs [][]float64) int {
	if len(vs) == 0 {
		panic("linalg: empty vector set")
	}
	d := len(vs[0])
	for i, v := range vs {
		if len(v) != d {
			panic(fmt.Sprintf("linalg: vector %d has dim %d, want %d", i, len(v), d))
		}
	}
	return d
}

// Zeros returns a zero vector of dimension d.
func Zeros(d int) []float64 { return make([]float64, d) }

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// AddInPlace adds b into a (a += b).
func AddInPlace(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: add dim mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Sub returns a - b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: sub dim mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s*v as a new vector.
func ScaleVec(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// ScaleInPlace multiplies v by s in place.
func ScaleInPlace(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AxpyInPlace performs a += s*b.
func AxpyInPlace(a []float64, s float64, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: axpy dim mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += s * b[i]
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot dim mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dist dim mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SqDist2 returns the squared Euclidean distance between a and b.
// Krum-style scores use squared distances, so expose it directly.
func SqDist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dist dim mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MeanVec returns the coordinate-wise mean of the vectors.
func MeanVec(vs [][]float64) []float64 {
	return MeanVecInto(make([]float64, checkSameLen(vs)), vs)
}

// MeanVecInto computes the coordinate-wise mean into out (which must
// have the vectors' dimension) and returns it. The accumulation order
// matches MeanVec exactly, so the two are bit-identical.
func MeanVecInto(out []float64, vs [][]float64) []float64 {
	checkSameLen(vs)
	clear(out)
	for _, v := range vs {
		for i := range v {
			out[i] += v[i]
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// StdVec returns the coordinate-wise (population) standard deviation.
func StdVec(vs [][]float64) []float64 {
	d := checkSameLen(vs)
	return StdVecInto(make([]float64, d), MeanVec(vs), vs)
}

// StdVecInto computes the coordinate-wise population standard
// deviation around mean into out and returns it; bit-identical to
// StdVec when mean is the vectors' MeanVec.
func StdVecInto(out, mean []float64, vs [][]float64) []float64 {
	checkSameLen(vs)
	clear(out)
	for _, v := range vs {
		for i := range v {
			diff := v[i] - mean[i]
			out[i] += diff * diff
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] = math.Sqrt(out[i] * inv)
	}
	return out
}

// MedianVec returns the coordinate-wise median. For even counts the
// average of the two central order statistics is used.
func MedianVec(vs [][]float64) []float64 {
	d := checkSameLen(vs)
	out := make([]float64, d)
	col := make([]float64, len(vs))
	for i := 0; i < d; i++ {
		for j, v := range vs {
			col[j] = v[i]
		}
		out[i] = MedianOf(col)
	}
	return out
}

// MedianOf returns the median of xs. xs is not modified.
func MedianOf(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("linalg: median of empty slice")
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// TrimmedMeanOf returns the mean of xs after removing the trim smallest
// and trim largest values. It panics if 2*trim >= len(xs).
func TrimmedMeanOf(xs []float64, trim int) float64 {
	n := len(xs)
	if trim < 0 || 2*trim >= n {
		panic(fmt.Sprintf("linalg: trimmed mean with trim=%d of %d values", trim, n))
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	var s float64
	for _, v := range tmp[trim : n-trim] {
		s += v
	}
	return s / float64(n-2*trim)
}

// NormalQuantile returns the standard normal inverse CDF at probability
// p in (0, 1). Used by the ALIE attack to pick the perturbation scale z
// that stays inside the defenders' plausibility region.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("linalg: normal quantile of p=%v outside (0,1)", p))
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// ArgMin returns the index of the smallest element (first on ties).
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("linalg: argmin of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("linalg: argmax of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
