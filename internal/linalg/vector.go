package linalg

import (
	"fmt"
	"math"
)

// Vector helpers. Vectors are slices of a Float element type — the
// kernels are generic over float32 and float64 so the two precision
// tiers of the training protocol share one implementation. Functions
// that combine a set of vectors require equal lengths and panic
// otherwise, mirroring the hard precondition that all gradient vectors
// in a round share the model dimension.
//
// Bit-identity discipline: the float64 instantiations perform exactly
// the floating-point operations (same order, same intermediates) the
// pre-generic kernels performed, so every pinned f64 trajectory is
// unchanged. The hot kernels iterate the coordinate axis 4-wide —
// coordinates are independent, so unrolling changes no per-coordinate
// operation sequence while giving the compiler straight-line bodies it
// can vectorize.

// Float is the element-type constraint of the vector kernels: the two
// IEEE-754 widths the precision tiers train in.
type Float interface {
	~float32 | ~float64
}

// checkSameLen panics unless all vectors share one length, returning it.
func checkSameLen[T Float](vs [][]T) int {
	if len(vs) == 0 {
		panic("linalg: empty vector set")
	}
	d := len(vs[0])
	for i, v := range vs {
		if len(v) != d {
			panic(fmt.Sprintf("linalg: vector %d has dim %d, want %d", i, len(v), d))
		}
	}
	return d
}

// Zeros returns a zero vector of dimension d.
func Zeros(d int) []float64 { return make([]float64, d) }

// CloneVec returns a copy of v.
func CloneVec[T Float](v []T) []T {
	out := make([]T, len(v))
	copy(out, v)
	return out
}

// AddInPlace adds b into a (a += b).
func AddInPlace[T Float](a, b []T) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: add dim mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Sub returns a - b as a new vector.
func Sub[T Float](a, b []T) []T {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: sub dim mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]T, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s*v as a new vector.
func ScaleVec[T Float](v []T, s T) []T {
	out := make([]T, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// ScaleInPlace multiplies v by s in place.
func ScaleInPlace[T Float](v []T, s T) {
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] *= s
		v[i+1] *= s
		v[i+2] *= s
		v[i+3] *= s
	}
	for ; i < len(v); i++ {
		v[i] *= s
	}
}

// AxpyInPlace performs a += s*b.
func AxpyInPlace[T Float](a []T, s T, b []T) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: axpy dim mismatch %d vs %d", len(a), len(b)))
	}
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] += s * b[i]
		a[i+1] += s * b[i+1]
		a[i+2] += s * b[i+2]
		a[i+3] += s * b[i+3]
	}
	for ; i < len(a); i++ {
		a[i] += s * b[i]
	}
}

// Dot returns the inner product of a and b. The accumulation is a
// single serial sum — unrolled accumulators would change the rounding
// sequence, and downstream consumers pin the exact result.
func Dot[T Float](a, b []T) T {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot dim mismatch %d vs %d", len(a), len(b)))
	}
	var s T
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2[T Float](v []T) T {
	return T(math.Sqrt(float64(Dot(v, v))))
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2[T Float](a, b []T) T {
	return T(math.Sqrt(float64(SqDist2(a, b))))
}

// SqDist2 returns the squared Euclidean distance between a and b.
// Krum-style scores use squared distances, so expose it directly.
func SqDist2[T Float](a, b []T) T {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dist dim mismatch %d vs %d", len(a), len(b)))
	}
	var s T
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MeanVec returns the coordinate-wise mean of the vectors.
func MeanVec[T Float](vs [][]T) []T {
	return MeanVecInto(make([]T, checkSameLen(vs)), vs)
}

// MeanVecInto computes the coordinate-wise mean into out (which must
// have the vectors' dimension) and returns it. The accumulation order
// matches MeanVec exactly, so the two are bit-identical.
func MeanVecInto[T Float](out []T, vs [][]T) []T {
	d := checkSameLen(vs)
	clear(out)
	for _, v := range vs {
		v = v[:d]
		i := 0
		for ; i+4 <= d; i += 4 {
			out[i] += v[i]
			out[i+1] += v[i+1]
			out[i+2] += v[i+2]
			out[i+3] += v[i+3]
		}
		for ; i < d; i++ {
			out[i] += v[i]
		}
	}
	inv := 1 / T(len(vs))
	ScaleInPlace(out[:d], inv)
	return out
}

// StdVec returns the coordinate-wise (population) standard deviation.
func StdVec[T Float](vs [][]T) []T {
	d := checkSameLen(vs)
	return StdVecInto(make([]T, d), MeanVec(vs), vs)
}

// StdVecInto computes the coordinate-wise population standard
// deviation around mean into out and returns it; bit-identical to
// StdVec when mean is the vectors' MeanVec. The square root runs in
// float64 for both widths (Go has no float32 sqrt intrinsic in the
// math package); the float32 instantiation rounds the result once.
func StdVecInto[T Float](out, mean []T, vs [][]T) []T {
	d := checkSameLen(vs)
	clear(out)
	for _, v := range vs {
		v = v[:d]
		i := 0
		for ; i+4 <= d; i += 4 {
			d0 := v[i] - mean[i]
			d1 := v[i+1] - mean[i+1]
			d2 := v[i+2] - mean[i+2]
			d3 := v[i+3] - mean[i+3]
			out[i] += d0 * d0
			out[i+1] += d1 * d1
			out[i+2] += d2 * d2
			out[i+3] += d3 * d3
		}
		for ; i < d; i++ {
			diff := v[i] - mean[i]
			out[i] += diff * diff
		}
	}
	inv := 1 / T(len(vs))
	for i := range out {
		out[i] = T(math.Sqrt(float64(out[i] * inv)))
	}
	return out
}

// MedianVec returns the coordinate-wise median. For even counts the
// average of the two central order statistics is used.
func MedianVec[T Float](vs [][]T) []T {
	d := checkSameLen(vs)
	out := make([]T, d)
	col := make([]T, len(vs))
	for i := 0; i < d; i++ {
		for j, v := range vs {
			col[j] = v[i]
		}
		out[i] = MedianSelect(col)
	}
	return out
}

// MedianOf returns the median of xs. xs is not modified.
func MedianOf[T Float](xs []T) T {
	if len(xs) == 0 {
		panic("linalg: median of empty slice")
	}
	tmp := append([]T(nil), xs...)
	return MedianSelect(tmp)
}

// TrimmedMeanOf returns the mean of xs after removing the trim smallest
// and trim largest values. It panics if 2*trim >= len(xs).
func TrimmedMeanOf[T Float](xs []T, trim int) T {
	n := len(xs)
	if trim < 0 || 2*trim >= n {
		panic(fmt.Sprintf("linalg: trimmed mean with trim=%d of %d values", trim, n))
	}
	tmp := append([]T(nil), xs...)
	return TrimmedMeanSelect(tmp, trim)
}

// NormalQuantile returns the standard normal inverse CDF at probability
// p in (0, 1). Used by the ALIE attack to pick the perturbation scale z
// that stays inside the defenders' plausibility region.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("linalg: normal quantile of p=%v outside (0,1)", p))
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// ArgMin returns the index of the smallest element (first on ties).
func ArgMin[T Float](xs []T) int {
	if len(xs) == 0 {
		panic("linalg: argmin of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax[T Float](xs []T) int {
	if len(xs) == 0 {
		panic("linalg: argmax of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
