package linalg

import (
	"fmt"
	"slices"
)

// Quickselect order statistics. The chunked coordinate-wise aggregation
// rules ask for one or two order statistics per coordinate column; a
// full per-coordinate sort is O(n log n) where selection is expected
// O(n), and the column scratch is reused, so selection allocates
// nothing. Ordering semantics match sort.Float64s exactly — NaNs order
// before every number — so the selected values are identical to the
// values a full sort would place at the same indices. Within an
// equivalence class (equal values, all NaNs, ±0) the element chosen is
// unspecified, exactly as an unstable sort leaves it.

// floatLess orders a before b with sort.Float64s semantics: ascending,
// NaNs first.
func floatLess[T Float](a, b T) bool {
	return a < b || (a != a && b == b)
}

// selectCutoff is the sub-slice size below which SelectKth finishes
// with insertion sort instead of partitioning further.
const selectCutoff = 12

// SelectKth partially reorders xs in place so that xs[k] holds the
// value an ascending sort would place at index k, every element of
// xs[:k] orders no later than xs[k], and every element of xs[k+1:]
// orders no earlier. Expected linear time, zero allocations.
func SelectKth[T Float](xs []T, k int) T {
	if k < 0 || k >= len(xs) {
		panic(fmt.Sprintf("linalg: select index %d of %d values", k, len(xs)))
	}
	lo, hi := 0, len(xs)
	for hi-lo > selectCutoff {
		// Median-of-three pivot: order xs[lo], xs[mid], xs[hi-1] and
		// partition around the middle one.
		mid := lo + (hi-lo)/2
		if floatLess(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if floatLess(xs[hi-1], xs[lo]) {
			xs[hi-1], xs[lo] = xs[lo], xs[hi-1]
		}
		if floatLess(xs[hi-1], xs[mid]) {
			xs[hi-1], xs[mid] = xs[mid], xs[hi-1]
		}
		p := xs[mid]
		// Dutch-flag partition: [lo,i) < p, [i,j) ≡ p, (scanning j),
		// [n,hi) > p. The equal run makes duplicate-heavy columns (sign
		// gradients, zero-heavy sparse rows) terminate in one pass.
		i, j, n := lo, lo, hi
		for j < n {
			switch {
			case floatLess(xs[j], p):
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j++
			case floatLess(p, xs[j]):
				n--
				xs[j], xs[n] = xs[n], xs[j]
			default:
				j++
			}
		}
		switch {
		case k < i:
			hi = i
		case k >= n:
			lo = n
		default:
			// k lands inside the equal run — xs[k] is equivalent to p
			// and the partition property already holds.
			return xs[k]
		}
	}
	insertionSort(xs[lo:hi])
	return xs[k]
}

// insertionSort sorts xs ascending with floatLess ordering.
func insertionSort[T Float](xs []T) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && floatLess(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// SortAscending sorts xs in place with the same value ordering as
// sort.Float64s (ascending, NaNs first), for either float width.
func SortAscending[T Float](xs []T) {
	slices.SortFunc(xs, func(a, b T) int {
		switch {
		case floatLess(a, b):
			return -1
		case floatLess(b, a):
			return 1
		default:
			return 0
		}
	})
}

// MedianSelect returns the median of xs, partially reordering it. The
// result is the value linalg.MedianOf computes on a copy: the middle
// order statistic, or the average of the two middle ones for even
// counts.
func MedianSelect[T Float](xs []T) T {
	n := len(xs)
	if n == 0 {
		panic("linalg: median of empty slice")
	}
	upper := SelectKth(xs, n/2)
	if n%2 == 1 {
		return upper
	}
	// The lower middle statistic is the maximum of the left partition.
	lower := xs[0]
	for _, v := range xs[1 : n/2] {
		if floatLess(lower, v) {
			lower = v
		}
	}
	return (lower + upper) / 2
}

// TrimmedMeanSelect returns the mean of xs after removing the trim
// smallest and trim largest values, reordering xs. Selection moves the
// two tails out of the middle region and only the surviving middle is
// sorted, so the summation visits the identical ascending value
// sequence as a full sort — the trimmed mean stays bit-identical to
// the sort-based kernel while the tails never pay sorting cost.
func TrimmedMeanSelect[T Float](xs []T, trim int) T {
	n := len(xs)
	if trim < 0 || 2*trim >= n {
		panic(fmt.Sprintf("linalg: trimmed mean with trim=%d of %d values", trim, n))
	}
	mid := xs
	if trim > 0 {
		SelectKth(xs, trim)
		SelectKth(xs[trim:], n-2*trim-1)
		mid = xs[trim : n-trim]
	}
	SortAscending(mid)
	var s T
	for _, v := range mid {
		s += v
	}
	return s / T(n-2*trim)
}
