package linalg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorArithmetic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	AddInPlace(a, b)
	if a[0] != 5 || a[2] != 9 {
		t.Errorf("AddInPlace = %v", a)
	}
	d := Sub(b, []float64{1, 1, 1})
	if d[0] != 3 || d[2] != 5 {
		t.Errorf("Sub = %v", d)
	}
	s := ScaleVec(b, 2)
	if s[1] != 10 || b[1] != 5 {
		t.Errorf("ScaleVec = %v (orig %v)", s, b)
	}
	ScaleInPlace(b, 0.5)
	if b[0] != 2 {
		t.Errorf("ScaleInPlace = %v", b)
	}
	v := []float64{1, 1}
	AxpyInPlace(v, 3, []float64{2, 4})
	if v[0] != 7 || v[1] != 13 {
		t.Errorf("AxpyInPlace = %v", v)
	}
}

func TestDotNormDist(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Errorf("Dot = %v", Dot(a, a))
	}
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %v", Norm2(a))
	}
	if Dist2([]float64{0, 0}, a) != 5 {
		t.Errorf("Dist2 = %v", Dist2([]float64{0, 0}, a))
	}
	if SqDist2([]float64{0, 0}, a) != 25 {
		t.Errorf("SqDist2 = %v", SqDist2([]float64{0, 0}, a))
	}
}

func TestDimMismatchPanics(t *testing.T) {
	funcs := map[string]func(){
		"AddInPlace": func() { AddInPlace([]float64{1}, []float64{1, 2}) },
		"Sub":        func() { Sub([]float64{1}, []float64{1, 2}) },
		"Dot":        func() { Dot([]float64{1}, []float64{1, 2}) },
		"Dist2":      func() { Dist2([]float64{1}, []float64{1, 2}) },
		"Axpy":       func() { AxpyInPlace([]float64{1}, 2, []float64{1, 2}) },
	}
	for name, f := range funcs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: dim mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMeanStdMedianVec(t *testing.T) {
	vs := [][]float64{
		{1, 10},
		{2, 20},
		{3, 30},
	}
	mean := MeanVec(vs)
	if !almostEq(mean[0], 2, 1e-12) || !almostEq(mean[1], 20, 1e-12) {
		t.Errorf("MeanVec = %v", mean)
	}
	std := StdVec(vs)
	want := math.Sqrt(2.0 / 3.0)
	if !almostEq(std[0], want, 1e-12) {
		t.Errorf("StdVec[0] = %v, want %v", std[0], want)
	}
	med := MedianVec(vs)
	if med[0] != 2 || med[1] != 20 {
		t.Errorf("MedianVec = %v", med)
	}
}

func TestMedianOf(t *testing.T) {
	if MedianOf([]float64{5}) != 5 {
		t.Error("single-element median")
	}
	if MedianOf([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if MedianOf([]float64{4, 1, 3, 2}) != 2.5 {
		t.Error("even median")
	}
	// input must not be mutated
	xs := []float64{3, 1, 2}
	MedianOf(xs)
	if xs[0] != 3 {
		t.Error("MedianOf mutated input")
	}
}

func TestTrimmedMeanOf(t *testing.T) {
	xs := []float64{100, 1, 2, 3, -50}
	got := TrimmedMeanOf(xs, 1)
	if !almostEq(got, 2, 1e-12) {
		t.Errorf("TrimmedMeanOf = %v, want 2", got)
	}
	if !almostEq(TrimmedMeanOf(xs, 0), (100+1+2+3-50)/5.0, 1e-12) {
		t.Error("trim=0 should be plain mean")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-trim did not panic")
		}
	}()
	TrimmedMeanOf([]float64{1, 2}, 1)
}

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		z := NormalQuantile(p)
		back := NormalCDF(z)
		if !almostEq(back, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
	if NormalQuantile(0.5) != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0", NormalQuantile(0.5))
	}
	// Known value: Phi^-1(0.975) ~= 1.959964
	if !almostEq(NormalQuantile(0.975), 1.959964, 1e-5) {
		t.Errorf("Quantile(0.975) = %v", NormalQuantile(0.975))
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d, want 1 (first of ties)", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Errorf("ArgMax = %d", ArgMax(xs))
	}
}

func TestZerosClone(t *testing.T) {
	z := Zeros(3)
	if len(z) != 3 || z[0] != 0 {
		t.Error("Zeros wrong")
	}
	v := []float64{1, 2}
	c := CloneVec(v)
	c[0] = 9
	if v[0] != 1 {
		t.Error("CloneVec aliases input")
	}
}

// Property: median of any vector set lies within [min, max] per
// coordinate, and is permutation invariant.
func TestQuickMedianBounds(t *testing.T) {
	prop := func(raw [5]float64, shift uint8) bool {
		vs := make([][]float64, 5)
		for i := range vs {
			vs[i] = []float64{clampF(raw[i])}
		}
		med := MedianVec(vs)[0]
		lo, hi := vs[0][0], vs[0][0]
		for _, v := range vs {
			lo = math.Min(lo, v[0])
			hi = math.Max(hi, v[0])
		}
		if med < lo || med > hi {
			return false
		}
		// permutation invariance: rotate by shift
		rot := make([][]float64, 5)
		s := int(shift) % 5
		for i := range vs {
			rot[i] = vs[(i+s)%5]
		}
		return MedianVec(rot)[0] == med
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: trimmed mean with trim t of sorted data is bounded by the
// (t)th and (n-1-t)th order statistics.
func TestQuickTrimmedMeanBounds(t *testing.T) {
	prop := func(raw [7]float64) bool {
		xs := make([]float64, 7)
		for i := range xs {
			xs[i] = clampF(raw[i])
		}
		tm := TrimmedMeanOf(xs, 2)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return tm >= sorted[2]-1e-12 && tm <= sorted[4]+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMedianVec(b *testing.B) {
	vs := make([][]float64, 25)
	for i := range vs {
		vs[i] = make([]float64, 1000)
		for j := range vs[i] {
			vs[i][j] = float64((i*j)%13) - 6
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MedianVec(vs)
	}
}
