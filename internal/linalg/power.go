package linalg

import (
	"fmt"
	"math"
)

// PowerIteration estimates the largest eigenvalue (in magnitude) of a
// symmetric matrix and its eigenvector via power iteration with a
// deterministic start vector. For the PSD co-assignment matrices used in
// the spectral analysis the dominant eigenvalue is also the largest.
func PowerIteration(m *Matrix, maxIter int, tol float64) (value float64, vector []float64, err error) {
	if m.Rows != m.Cols {
		return 0, nil, fmt.Errorf("linalg: power iteration on non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	if n == 0 {
		return 0, nil, fmt.Errorf("linalg: power iteration on empty matrix")
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// Deterministic pseudo-random start avoids orthogonality to the
	// dominant eigenvector for the structured matrices seen here.
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + 0.001*float64((i*2654435761)%97)
	}
	normalize(v)
	w := make([]float64, n)
	prev := 0.0
	for iter := 0; iter < maxIter; iter++ {
		matVec(m, v, w)
		lambda := Dot(v, w)
		nw := Norm2(w)
		if nw == 0 {
			return 0, v, nil // v is in the null space: eigenvalue 0
		}
		for i := range w {
			v[i] = w[i] / nw
		}
		if math.Abs(lambda-prev) < tol*math.Max(1, math.Abs(lambda)) {
			return lambda, v, nil
		}
		prev = lambda
	}
	return prev, v, nil
}

// SecondEigenvaluePSD estimates µ1, the second-largest eigenvalue of a
// symmetric PSD matrix whose largest eigenpair is known, by deflating
// (A − λ0·v0·v0ᵀ) and running power iteration. For the normalized
// co-assignment matrices A·Aᵀ of biregular graphs, λ0 = 1 with the
// uniform eigenvector — this gives an O(K²·iters) alternative to the
// O(K³) Jacobi solve for large clusters.
func SecondEigenvaluePSD(m *Matrix, topValue float64, topVector []float64, maxIter int, tol float64) (float64, error) {
	if m.Rows != m.Cols {
		return 0, fmt.Errorf("linalg: second eigenvalue on non-square %dx%d", m.Rows, m.Cols)
	}
	if len(topVector) != m.Rows {
		return 0, fmt.Errorf("linalg: top vector dim %d, want %d", len(topVector), m.Rows)
	}
	v0 := CloneVec(topVector)
	normalize(v0)
	// Deflate: B = A − λ0·v0·v0ᵀ, applied implicitly inside the
	// iteration to avoid materializing the rank-1 update.
	n := m.Rows
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + 0.001*float64((i*40503)%89)
	}
	orthogonalizeAgainst(v, v0)
	normalize(v)
	w := make([]float64, n)
	if maxIter <= 0 {
		maxIter = 2000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	prev := 0.0
	for iter := 0; iter < maxIter; iter++ {
		matVec(m, v, w)
		AxpyInPlace(w, -topValue*Dot(v0, v), v0)
		lambda := Dot(v, w)
		nw := Norm2(w)
		if nw == 0 {
			return 0, nil
		}
		for i := range w {
			v[i] = w[i] / nw
		}
		orthogonalizeAgainst(v, v0) // re-orthogonalize against drift
		normalize(v)
		if math.Abs(lambda-prev) < tol*math.Max(1, math.Abs(lambda)) {
			return lambda, nil
		}
		prev = lambda
	}
	return prev, nil
}

// matVec computes w = M·v.
func matVec(m *Matrix, v, w []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		w[i] = s
	}
}

// normalize scales v to unit norm (no-op on the zero vector).
func normalize(v []float64) {
	n := Norm2(v)
	if n == 0 {
		return
	}
	ScaleInPlace(v, 1/n)
}

// orthogonalizeAgainst removes the component of v along the unit vector u.
func orthogonalizeAgainst(v, u []float64) {
	AxpyInPlace(v, -Dot(u, v), u)
}
