package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestSelectKthMatchesSort checks that SelectKth returns exactly the
// value sorting would place at the same index, over random inputs with
// duplicates, and that it leaves the slice partitioned around k.
func TestSelectKthMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		xs := make([]float64, n)
		for i := range xs {
			// Coarse grid forces duplicate values into most columns.
			xs[i] = float64(rng.Intn(9) - 4)
			if rng.Intn(4) == 0 {
				xs[i] += rng.Float64()
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		work := append([]float64(nil), xs...)
		got := SelectKth(work, k)
		if got != sorted[k] {
			t.Fatalf("trial %d: SelectKth(%v, %d) = %v, sorted[%d] = %v", trial, xs, k, got, k, sorted[k])
		}
		for i := 0; i < k; i++ {
			if floatLess(work[k], work[i]) {
				t.Fatalf("trial %d: work[%d]=%v orders after work[%d]=%v", trial, i, work[i], k, work[k])
			}
		}
		for i := k + 1; i < n; i++ {
			if floatLess(work[i], work[k]) {
				t.Fatalf("trial %d: work[%d]=%v orders before work[%d]=%v", trial, i, work[i], k, work[k])
			}
		}
	}
}

// TestSelectKthNaN checks the sort.Float64s ordering contract: NaNs
// order before every number, so selecting inside or past the NaN block
// matches a full sort.
func TestSelectKthNaN(t *testing.T) {
	nan := math.NaN()
	xs := []float64{3, nan, -1, nan, 2, 0, nan, -5}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for k := range xs {
		work := append([]float64(nil), xs...)
		got := SelectKth(work, k)
		want := sorted[k]
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("k=%d: got %v, want NaN", k, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("k=%d: got %v, want %v", k, got, want)
		}
	}
}

// TestMedianSelectMatchesSortedMedian pins MedianSelect to the
// sort-based order statistics for odd and even counts, both widths.
func TestMedianSelectMatchesSortedMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(33)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		got := MedianSelect(append([]float64(nil), xs...))
		if got != want {
			t.Fatalf("trial %d: MedianSelect = %v, sorted median = %v", trial, got, want)
		}
		// Same property at float32 width.
		xs32 := make([]float32, n)
		for i := range xs {
			xs32[i] = float32(xs[i])
		}
		s32 := append([]float32(nil), xs32...)
		SortAscending(s32)
		var want32 float32
		if n%2 == 1 {
			want32 = s32[n/2]
		} else {
			want32 = (s32[n/2-1] + s32[n/2]) / 2
		}
		if got32 := MedianSelect(xs32); got32 != want32 {
			t.Fatalf("trial %d: MedianSelect32 = %v, want %v", trial, got32, want32)
		}
	}
}

// TestTrimmedMeanSelectBitIdentical pins the quickselect trimmed mean
// to the full-sort kernel bit for bit: both must sum the identical
// ascending value sequence.
func TestTrimmedMeanSelectBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(30)
		trim := rng.Intn((n - 1) / 2)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			if rng.Intn(3) == 0 {
				xs[i] = float64(rng.Intn(3)) // duplicates across the trim boundary
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var sum float64
		for _, v := range sorted[trim : n-trim] {
			sum += v
		}
		want := sum / float64(n-2*trim)
		got := TrimmedMeanSelect(append([]float64(nil), xs...), trim)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (n=%d trim=%d): TrimmedMeanSelect = %x, sorted = %x",
				trial, n, trim, math.Float64bits(got), math.Float64bits(want))
		}
	}
}
