package linalg

import (
	"math/rand"
	"sort"
	"testing"
)

// Kernel micro-benchmarks at the two precision widths and the two dims
// the scaling curve in BENCH_round.json brackets (the softmax config's
// ~1k and the large-model 100k). The CI bench-smoke job runs these with
// -benchtime=1x as a liveness check; locally they quantify the f32
// datapath win and the quickselect-vs-sort median win.

const (
	benchSmallDim = 1_000
	benchLargeDim = 100_000
	benchRows     = 15 // one vote-winner per file at f=15
)

func benchVecs64(dim int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	vs := make([][]float64, benchRows)
	for i := range vs {
		vs[i] = make([]float64, dim)
		for j := range vs[i] {
			vs[i][j] = rng.NormFloat64()
		}
	}
	return vs
}

func benchVecs32(dim int) [][]float32 {
	vs64 := benchVecs64(dim)
	vs := make([][]float32, len(vs64))
	for i := range vs {
		vs[i] = make([]float32, dim)
		for j := range vs[i] {
			vs[i][j] = float32(vs64[i][j])
		}
	}
	return vs
}

func benchMeanVecInto[T Float](b *testing.B, vs [][]T) {
	out := make([]T, len(vs[0]))
	b.SetBytes(int64(len(vs) * len(vs[0]) * int(unsafeSizeof[T]())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeanVecInto(out, vs)
	}
}

// unsafeSizeof reports the element width without importing unsafe.
func unsafeSizeof[T Float]() uintptr {
	var t T
	switch any(t).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}

func BenchmarkMeanVecInto(b *testing.B) {
	b.Run("f64-1k", func(b *testing.B) { benchMeanVecInto(b, benchVecs64(benchSmallDim)) })
	b.Run("f64-100k", func(b *testing.B) { benchMeanVecInto(b, benchVecs64(benchLargeDim)) })
	b.Run("f32-1k", func(b *testing.B) { benchMeanVecInto(b, benchVecs32(benchSmallDim)) })
	b.Run("f32-100k", func(b *testing.B) { benchMeanVecInto(b, benchVecs32(benchLargeDim)) })
}

func benchStdVecInto[T Float](b *testing.B, vs [][]T) {
	mean := MeanVecInto(make([]T, len(vs[0])), vs)
	out := make([]T, len(vs[0]))
	b.SetBytes(int64(len(vs) * len(vs[0]) * int(unsafeSizeof[T]())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StdVecInto(out, mean, vs)
	}
}

func BenchmarkStdVecInto(b *testing.B) {
	b.Run("f64-1k", func(b *testing.B) { benchStdVecInto(b, benchVecs64(benchSmallDim)) })
	b.Run("f64-100k", func(b *testing.B) { benchStdVecInto(b, benchVecs64(benchLargeDim)) })
	b.Run("f32-1k", func(b *testing.B) { benchStdVecInto(b, benchVecs32(benchSmallDim)) })
	b.Run("f32-100k", func(b *testing.B) { benchStdVecInto(b, benchVecs32(benchLargeDim)) })
}

// benchMedian runs the chunked-aggregation access pattern: gather each
// coordinate's column, then take its median — selection-based.
func benchMedian[T Float](b *testing.B, vs [][]T) {
	dim := len(vs[0])
	col := make([]T, len(vs))
	out := make([]T, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < dim; c++ {
			for j, v := range vs {
				col[j] = v[c]
			}
			out[c] = MedianSelect(col)
		}
	}
}

func BenchmarkMedian(b *testing.B) {
	b.Run("f64-1k", func(b *testing.B) { benchMedian(b, benchVecs64(benchSmallDim)) })
	b.Run("f64-100k", func(b *testing.B) { benchMedian(b, benchVecs64(benchLargeDim)) })
	b.Run("f32-1k", func(b *testing.B) { benchMedian(b, benchVecs32(benchSmallDim)) })
	b.Run("f32-100k", func(b *testing.B) { benchMedian(b, benchVecs32(benchLargeDim)) })
}

// BenchmarkMedianSortBaseline is the pre-quickselect kernel (full
// per-coordinate sort.Float64s) kept as the comparison baseline for the
// BENCH_round.json quickselect entry.
func BenchmarkMedianSortBaseline(b *testing.B) {
	vs := benchVecs64(benchSmallDim)
	dim := len(vs[0])
	col := make([]float64, len(vs))
	out := make([]float64, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < dim; c++ {
			for j, v := range vs {
				col[j] = v[c]
			}
			sort.Float64s(col)
			if n := len(col); n%2 == 1 {
				out[c] = col[n/2]
			} else {
				out[c] = (col[n/2-1] + col[n/2]) / 2
			}
		}
	}
}
