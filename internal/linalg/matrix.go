// Package linalg provides the dense linear algebra used by ByzShield's
// spectral analysis and aggregation pipeline: matrices with
// multiplication/transpose/Gram products, a Jacobi eigensolver for
// symmetric matrices (used to verify the Lemma 2 spectra of the
// normalized bi-adjacency products A·Aᵀ), singular values, and the vector
// statistics (coordinate-wise mean/median/std, norms, distances) that the
// robust aggregators are built from.
//
// Everything is pure Go on float64 with deterministic iteration order so
// that identical inputs always yield bit-identical outputs — a property
// the majority-vote stage of the training protocol relies on.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices, which must all have
// equal length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns m * b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range rowB {
				rowOut[j] += a * bv
			}
		}
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Gram returns m * mᵀ (the left Gram matrix), which is symmetric
// positive semidefinite. For a bi-adjacency matrix H of a bipartite
// graph this is the worker-side co-assignment matrix of the paper.
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.Rows, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := i; j < m.Rows; j++ {
			rj := m.Data[j*m.Cols : (j+1)*m.Cols]
			var s float64
			for k := range ri {
				s += ri[k] * rj[k]
			}
			out.Data[i*out.Cols+j] = s
			out.Data[j*out.Cols+i] = s
		}
	}
	return out
}

// IsSymmetric reports whether m equals its transpose up to tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports element-wise equality up to tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// RowSums returns the per-row sums (left degrees for a 0/1 bi-adjacency).
func (m *Matrix) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for j := 0; j < m.Cols; j++ {
			s += m.Data[i*m.Cols+j]
		}
		out[i] = s
	}
	return out
}

// ColSums returns the per-column sums (right degrees for a 0/1 bi-adjacency).
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out[j] += m.Data[i*m.Cols+j]
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
