// Round-engine benchmarks: latency, allocations, and communication
// bytes per protocol round on the quickstart configuration (MOLS(5,3):
// K = 15 workers, f = 25 files; softmax 32×10, dim = 330; batch 500;
// ALIE with the worst-case q = 3 Byzantine set; coordinate-wise median).
//
// Run with:
//
//	go test ./internal/cluster -bench BenchmarkRound -benchmem -run '^$'
//
// Results seed BENCH_round.json at the repository root; see the README
// for how to interpret the trajectory.
package cluster

import (
	"context"
	"testing"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/detect"
	"byzshield/internal/distort"
	"byzshield/internal/model"
	"byzshield/internal/obs"
	"byzshield/internal/trainer"
	"byzshield/internal/vote"
	"byzshield/internal/wire"
)

// quickstartConfig mirrors examples/quickstart at full scale.
func quickstartConfig(tb testing.TB) Config {
	tb.Helper()
	a, err := assign.MOLS(5, 3)
	if err != nil {
		tb.Fatal(err)
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 3000, Test: 1000, Dim: 32, Classes: 10, Seed: 7,
	})
	if err != nil {
		tb.Fatal(err)
	}
	m, err := model.NewSoftmax(32, 10)
	if err != nil {
		tb.Fatal(err)
	}
	byz := distort.NewAnalyzer(a).WorstCaseByzantines(context.Background(), 3)
	return Config{
		Assignment: a, Model: m, Train: train, Test: test,
		BatchSize: 500, Attack: attack.ALIE{}, Byzantines: byz,
		Aggregator: aggregate.Median{},
		Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 25},
		Momentum:   0.9, Seed: 7,
	}
}

// benchRounds drives b.N rounds through one engine.
func benchRounds(b *testing.B, cfg Config) {
	b.Helper()
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var upBytes, upRawBytes, bcastBytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := e.RunRound()
		if err != nil {
			b.Fatal(err)
		}
		upBytes = stats.Times.ReportBytes
		upRawBytes = stats.Times.ReportRawBytes
		bcastBytes = stats.Times.BroadcastBytes
	}
	b.StopTimer()
	if upBytes > 0 {
		b.ReportMetric(float64(upBytes), "upB/round")
	}
	if upRawBytes > 0 {
		b.ReportMetric(float64(upRawBytes), "upRawB/round")
	}
	if bcastBytes > 0 {
		b.ReportMetric(float64(bcastBytes), "bcastB/round")
	}
}

// BenchmarkRound measures one protocol round: the parallel engine
// (persistent pool, GOMAXPROCS wide), the serial engine, and the
// physically measured communication variant. allocs/op is the headline
// number the arena design targets.
func BenchmarkRound(b *testing.B) {
	b.Run("parallel", func(b *testing.B) {
		benchRounds(b, quickstartConfig(b))
	})
	b.Run("serial", func(b *testing.B) {
		cfg := quickstartConfig(b)
		cfg.Parallelism = 1
		benchRounds(b, cfg)
	})
	b.Run("pool-4", func(b *testing.B) {
		cfg := quickstartConfig(b)
		cfg.Parallelism = 4
		benchRounds(b, cfg)
	})
	b.Run("measure-comm", func(b *testing.B) {
		cfg := quickstartConfig(b)
		cfg.MeasureComm = true
		benchRounds(b, cfg)
	})
	// Delta parameter broadcasts (full refresh every 16 rounds): the
	// bcastB/round metric against measure-comm's full-vector broadcast
	// is the steady-state PS→worker saving of the v2 wire protocol.
	b.Run("measure-comm-delta", func(b *testing.B) {
		cfg := quickstartConfig(b)
		cfg.MeasureComm = true
		cfg.BroadcastFullEvery = 16
		benchRounds(b, cfg)
	})
	// Lossy uplink tiers through the physically measured codec path:
	// upB/round against the raw-equivalent upRawB/round is the realized
	// lossy saving on the quickstart config — the acceptance gate for
	// the quantized tiers is ≥4x under int8 or sign with round_ns no
	// worse than the delta row above.
	b.Run("measure-comm-int8", func(b *testing.B) {
		cfg := quickstartConfig(b)
		cfg.MeasureComm = true
		cfg.BroadcastFullEvery = 16
		cfg.UplinkTier = wire.TierInt8
		benchRounds(b, cfg)
	})
	b.Run("measure-comm-sign", func(b *testing.B) {
		cfg := quickstartConfig(b)
		cfg.MeasureComm = true
		cfg.BroadcastFullEvery = 16
		cfg.UplinkTier = wire.TierSign
		benchRounds(b, cfg)
	})
	// PS-side detection on the hot path: per-worker feature extraction
	// (report norm, cosine to the fleet median, robust z-scores into the
	// ring buffers) plus the detector verdict every round. MinRounds is
	// pushed past any b.N so no worker is ever blacklisted — a shrinking
	// fleet computes fewer gradients and would flatter the number — so
	// the delta against serial is the detection layer's whole cost.
	b.Run("detect-zscore", func(b *testing.B) {
		cfg := quickstartConfig(b)
		cfg.Parallelism = 1
		cfg.Detector = detect.ZScore{}
		cfg.Detection = detect.Params{MinRounds: 1 << 30}
		benchRounds(b, cfg)
	})
}

// BenchmarkRoundMLP swaps in an MLP so the pooled backprop scratch is on
// the measured path (the per-sample allocation profile the model
// workspaces eliminate).
func BenchmarkRoundMLP(b *testing.B) {
	cfg := quickstartConfig(b)
	m, err := model.NewMLP(32, 24, 10)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Model = m
	benchRounds(b, cfg)
}

// TestSteadyStateAllocsPerRound pins the allocation budget of the hot
// path: after warm-up (first-epoch reshuffle, attacker scratch growth),
// a protocol round on the quickstart configuration — ALIE moment
// estimation and payload crafting included — must stay in low single
// digits, far under the 24 the arena design left behind. Measured on
// the serial engine so pool scheduling noise cannot flake the count.
// The instrumented subtest re-pins the same budget with the metrics
// registry and round tracer enabled: every hot-path instrument is an
// atomic store into preallocated state, so observability must be free
// of allocation too.
func TestSteadyStateAllocsPerRound(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc budget is pinned in the non-race run")
	}
	gate := func(t *testing.T, cfgT Config) {
		t.Helper()
		e, err := New(cfgT)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 8; i++ {
			if _, err := e.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(12, func() {
			if _, err := e.RunRound(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs >= 24 {
			t.Fatalf("steady-state round allocates %.1f times, budget < 24", allocs)
		}
		if allocs > 4 {
			t.Errorf("steady-state round allocates %.1f times, want ≤ 4 (attacker scratch + sampler prealloc regressed)", allocs)
		}
	}
	t.Run("bare", func(t *testing.T) {
		cfgT := quickstartConfig(t)
		cfgT.Parallelism = 1
		gate(t, cfgT)
	})
	t.Run("instrumented", func(t *testing.T) {
		cfgT := quickstartConfig(t)
		cfgT.Parallelism = 1
		cfgT.Metrics = obs.NewRegistry()
		cfgT.Tracer = obs.NewTracer(64)
		gate(t, cfgT)
	})
}

// BenchmarkVoteMajority isolates the allocation-free small-n vote on a
// quickstart-shaped replica set: r = 3 replicas of dim 330, one of them
// a disagreeing Byzantine payload.
func BenchmarkVoteMajority(b *testing.B) {
	honest := make([]float64, 330)
	crafted := make([]float64, 330)
	for i := range honest {
		honest[i] = float64(i%13) - 6
		crafted[i] = -honest[i]
	}
	replicas := [][]float64{honest, honest, crafted}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := vote.Majority(replicas); err != nil {
			b.Fatal(err)
		}
	}
}
