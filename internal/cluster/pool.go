package cluster

import (
	"sync"
	"sync/atomic"
)

// pool is the engine's persistent worker goroutine pool. It replaces the
// per-round goroutine spawns of the original engine: the goroutines are
// started once at engine construction and fed one job per protocol phase
// (compute, vote, chunked aggregation), so the steady-state round
// allocates no goroutine stacks and pays no spawn latency.
//
// Jobs are index batches: run(n, fn) invokes fn(worker, task) for every
// task in [0, n), where worker identifies the executing pool goroutine
// (in [0, size)) so callers can address per-goroutine scratch without
// synchronization. Tasks are claimed from a shared atomic counter, which
// keeps the pool balanced when task costs are uneven (e.g. Byzantine
// workers drop out of the compute phase).
type pool struct {
	size int
	jobs chan *poolJob
	wg   sync.WaitGroup
}

// poolJob is one index batch dispatched to every pool goroutine.
type poolJob struct {
	n    int
	next atomic.Int64
	fn   func(worker, task int)
	done sync.WaitGroup
}

// newPool starts size goroutines. size must be >= 1.
func newPool(size int) *pool {
	p := &pool{size: size, jobs: make(chan *poolJob)}
	p.wg.Add(size)
	for w := 0; w < size; w++ {
		go p.loop(w)
	}
	return p
}

// loop claims tasks from each received job until the jobs channel
// closes.
func (p *pool) loop(worker int) {
	defer p.wg.Done()
	for j := range p.jobs {
		for {
			t := int(j.next.Add(1)) - 1
			if t >= j.n {
				break
			}
			j.fn(worker, t)
		}
		j.done.Done()
	}
}

// run executes fn(worker, task) for every task in [0, n) across the pool
// and returns when all tasks completed. fn must be safe for concurrent
// invocation on distinct tasks.
func (p *pool) run(n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	j := &poolJob{n: n, fn: fn}
	j.done.Add(p.size)
	for i := 0; i < p.size; i++ {
		p.jobs <- j
	}
	j.done.Wait()
}

// close terminates the pool goroutines and waits for them to exit. The
// pool must be idle (no run in flight).
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}
