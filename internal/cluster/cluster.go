// Package cluster implements the synchronous parameter-server training
// protocol of Algorithm 1: per round, the PS samples a batch, partitions
// it into files according to the assignment graph, workers compute file
// gradient sums in parallel (Byzantine workers substitute crafted
// vectors), the PS majority-votes each file's replicas (Eq. 3), applies
// a robust aggregation rule to the vote winners, and updates the model
// with momentum SGD.
//
// The engine runs in-process with one goroutine per worker for the
// compute phase (the redundant computation cost of replication is real,
// not simulated) and optionally measures the communication phase by
// actually gob-encoding and decoding every worker→PS message, so the
// Figure 12 computation/communication/aggregation split is observed, not
// modelled.
package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
	"byzshield/internal/vote"
)

// Config assembles one training experiment.
type Config struct {
	Assignment *assign.Assignment
	Model      model.Model
	Train      *data.Dataset
	Test       *data.Dataset
	BatchSize  int
	// Attack crafts Byzantine payloads; Benign{} for attack-free runs.
	Attack attack.Attack
	// Byzantines lists the corrupted worker ids (chosen worst-case by
	// the caller, typically via distort.WorstCaseByzantines).
	Byzantines []int
	// Aggregator is applied to the vote winners (or directly to worker
	// gradients when the assignment has r = 1).
	Aggregator aggregate.Aggregator
	Schedule   trainer.Schedule
	Momentum   float64
	Seed       int64
	// SignMessages makes workers transmit coordinate signs instead of
	// gradient values (the signSGD pipeline). The aggregated sign vector
	// is applied directly (scaled only by the learning rate).
	SignMessages bool
	// VoteTolerance > 0 switches the vote to L∞ clustering mode.
	VoteTolerance float64
	// MeasureComm enables real gob serialization of worker messages so
	// the communication phase is physically measured.
	MeasureComm bool
}

// PhaseTimes accumulates wall-clock time per protocol phase, plus the
// exact number of serialized worker→PS bytes (deterministic, unlike the
// wall-clock figures).
type PhaseTimes struct {
	Compute       time.Duration
	Communication time.Duration
	Aggregation   time.Duration
	CommBytes     int64
}

// Add accumulates other into t.
func (t *PhaseTimes) Add(other PhaseTimes) {
	t.Compute += other.Compute
	t.Communication += other.Communication
	t.Aggregation += other.Aggregation
	t.CommBytes += other.CommBytes
}

// RoundStats reports one protocol round.
type RoundStats struct {
	Iteration      int
	LR             float64
	DistortedFiles int // files whose vote the Byzantines won this round
	Times          PhaseTimes
}

// Engine executes the protocol.
type Engine struct {
	cfg         Config
	params      []float64
	opt         *trainer.SGD
	sampler     *data.BatchSampler
	byzSet      map[int]bool
	corruptible []int // files with ≥ r' Byzantine replicas (static per run)
	rng         *rand.Rand
	iter        int
	times       PhaseTimes
}

// New validates the configuration and initializes the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Assignment == nil || cfg.Model == nil || cfg.Train == nil || cfg.Test == nil {
		return nil, fmt.Errorf("cluster: assignment, model, train and test are required")
	}
	if err := cfg.Assignment.Validate(); err != nil {
		return nil, err
	}
	if cfg.Aggregator == nil {
		return nil, fmt.Errorf("cluster: aggregator is required")
	}
	if cfg.Attack == nil {
		cfg.Attack = attack.Benign{}
	}
	if cfg.BatchSize < cfg.Assignment.F {
		return nil, fmt.Errorf("cluster: batch size %d smaller than file count %d", cfg.BatchSize, cfg.Assignment.F)
	}
	if err := cfg.Train.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: train set: %w", err)
	}
	if err := cfg.Test.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: test set: %w", err)
	}
	byzSet := make(map[int]bool, len(cfg.Byzantines))
	for _, u := range cfg.Byzantines {
		if u < 0 || u >= cfg.Assignment.K {
			return nil, fmt.Errorf("cluster: byzantine worker %d out of range [0,%d)", u, cfg.Assignment.K)
		}
		if byzSet[u] {
			return nil, fmt.Errorf("cluster: byzantine worker %d listed twice", u)
		}
		byzSet[u] = true
	}
	sampler, err := data.NewBatchSampler(cfg.Train.Len(), cfg.BatchSize, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opt, err := trainer.NewSGD(cfg.Schedule, cfg.Momentum, cfg.Model.NumParams())
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		params:  model.InitParams(cfg.Model, cfg.Seed),
		opt:     opt,
		sampler: sampler,
		byzSet:  byzSet,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	e.corruptible = e.computeCorruptible()
	return e, nil
}

// computeCorruptible returns the files with at least r' Byzantine
// replicas under the configured Byzantine set.
func (e *Engine) computeCorruptible() []int {
	a := e.cfg.Assignment
	rp := a.R/2 + 1
	var out []int
	for v := 0; v < a.F; v++ {
		c := 0
		for _, u := range a.FileWorkers(v) {
			if e.byzSet[u] {
				c++
			}
		}
		if c >= rp {
			out = append(out, v)
		}
	}
	return out
}

// CorruptibleFiles returns the files whose votes the Byzantines control.
func (e *Engine) CorruptibleFiles() []int {
	return append([]int(nil), e.corruptible...)
}

// DistortionFraction returns ε̂ = |corruptible| / f for this run.
func (e *Engine) DistortionFraction() float64 {
	return float64(len(e.corruptible)) / float64(e.cfg.Assignment.F)
}

// Params returns the current model parameters (a copy).
func (e *Engine) Params() []float64 {
	out := make([]float64, len(e.params))
	copy(out, e.params)
	return out
}

// Times returns accumulated per-phase wall-clock times.
func (e *Engine) Times() PhaseTimes { return e.times }

// Iteration returns the next iteration index to execute.
func (e *Engine) Iteration() int { return e.iter }

// Snapshot captures the restartable training state (parameters,
// momentum, iteration) for checkpointing.
func (e *Engine) Snapshot() (params, velocity []float64, iteration int) {
	return e.Params(), e.opt.Velocity(), e.iter
}

// Restore resumes from a snapshot taken by Snapshot. Dimensions must
// match the engine's model. The batch sampler is rebuilt from the
// engine's seed and fast-forwarded to the snapshot iteration, so a
// restore into a freshly constructed engine continues the exact sample
// stream of the interrupted run — no round replay is needed.
func (e *Engine) Restore(params, velocity []float64, iteration int) error {
	if len(params) != len(e.params) {
		return fmt.Errorf("cluster: restore params length %d, want %d", len(params), len(e.params))
	}
	if iteration < 0 {
		return fmt.Errorf("cluster: restore iteration %d < 0", iteration)
	}
	if len(velocity) > 0 {
		if err := e.opt.SetVelocity(velocity); err != nil {
			return err
		}
	}
	sampler, err := data.NewBatchSampler(e.cfg.Train.Len(), e.cfg.BatchSize, e.cfg.Seed)
	if err != nil {
		return err
	}
	for t := 0; t < iteration; t++ {
		sampler.Next()
	}
	e.sampler = sampler
	copy(e.params, params)
	e.iter = iteration
	return nil
}

// CheckFeasible verifies that the configured aggregator's Byzantine
// preconditions hold for this run's operand count and worst-case
// corruption — the applicability constraints the paper runs into
// ("Bulyan cannot be paired with DETOX for q ≥ 1 ...").
func (e *Engine) CheckFeasible() error {
	ba, ok := e.cfg.Aggregator.(aggregate.ByzAware)
	if !ok {
		return nil
	}
	n := e.cfg.Assignment.F // operands after voting
	c := len(e.corruptible)
	return ba.Feasible(n, c)
}

// RunRound executes one protocol round and returns its statistics.
func (e *Engine) RunRound() (RoundStats, error) {
	return e.StepOnce(context.Background())
}

// StepOnce executes one protocol round under the given context.
// Cancellation is checked at the round boundary — a canceled context
// returns before any state (sampler, optimizer, iteration counter)
// mutates, so the engine always sits exactly between rounds and can be
// resumed or checkpointed after a cancellation.
func (e *Engine) StepOnce(ctx context.Context) (RoundStats, error) {
	if err := ctx.Err(); err != nil {
		return RoundStats{}, err
	}
	a := e.cfg.Assignment
	m := e.cfg.Model
	dim := m.NumParams()

	batch := e.sampler.Next()
	files, err := data.PartitionFiles(batch, a.F)
	if err != nil {
		return RoundStats{}, err
	}

	// --- Compute phase: workers compute file gradient sums in parallel.
	// Redundancy is physically executed: every honest worker computes
	// every file it is assigned.
	computeStart := time.Now()
	workerGrads := make([]map[int][]float64, a.K)
	var wg sync.WaitGroup
	for u := 0; u < a.K; u++ {
		if e.byzSet[u] {
			continue // Byzantine workers substitute payloads below
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			out := make(map[int][]float64, a.L)
			for _, v := range a.WorkerFiles(u) {
				g := make([]float64, dim)
				m.SumGradient(e.params, e.cfg.Train, files[v], g)
				out[v] = g
			}
			workerGrads[u] = out
		}(u)
	}
	wg.Wait()
	computeTime := time.Since(computeStart)

	// --- Attack oracle: true gradients for every file (reusing honest
	// workers' results; computing any file held only by Byzantines).
	trueGrads := make([][]float64, a.F)
	for v := 0; v < a.F; v++ {
		for _, u := range a.FileWorkers(v) {
			if !e.byzSet[u] {
				trueGrads[v] = workerGrads[u][v]
				break
			}
		}
		if trueGrads[v] == nil {
			g := make([]float64, dim)
			m.SumGradient(e.params, e.cfg.Train, files[v], g)
			trueGrads[v] = g
		}
	}

	// Byzantine payloads. ALIE-style attacks are crafted from the
	// worker-level view (n = K workers, m = q Byzantines), matching the
	// paper's attack model: the adversary estimates moments across the
	// worker population, not the post-vote operand population.
	atkCtx := &attack.Context{
		Round:             e.iter,
		Dim:               dim,
		FileGradients:     trueGrads,
		CorruptibleFiles:  e.corruptible,
		Participants:      a.K,
		ExpectedCorrupted: len(e.byzSet),
		FileSize:          float64(e.cfg.BatchSize) / float64(a.F),
		Rng:               rand.New(rand.NewSource(e.cfg.Seed + int64(e.iter)*7919)),
	}
	craft := e.cfg.Attack.BeginRound(atkCtx)
	crafted := make(map[int][]float64)
	for u := range e.byzSet {
		grads := make(map[int][]float64, a.L)
		for _, v := range a.WorkerFiles(u) {
			payload, ok := crafted[v]
			if !ok {
				payload = craft(v, trueGrads[v])
				crafted[v] = payload
			}
			grads[v] = payload
		}
		workerGrads[u] = grads
	}

	// Optional sign compression (signSGD pipeline).
	if e.cfg.SignMessages {
		for u := range workerGrads {
			for v, g := range workerGrads[u] {
				workerGrads[u][v] = signVec(g)
			}
		}
	}

	// --- Communication phase: move every worker's message to the PS.
	commStart := time.Now()
	var commBytes int64
	if e.cfg.MeasureComm {
		for u := 0; u < a.K; u++ {
			decoded, n, err := roundTripMessage(u, workerGrads[u])
			if err != nil {
				return RoundStats{}, fmt.Errorf("cluster: worker %d message: %w", u, err)
			}
			workerGrads[u] = decoded
			commBytes += n
		}
	}
	commTime := time.Since(commStart)

	// --- Aggregation phase: per-file majority votes, then the robust
	// aggregation rule over the winners.
	aggStart := time.Now()
	winners := make([][]float64, a.F)
	distorted := 0
	for v := 0; v < a.F; v++ {
		replicas := make([][]float64, 0, a.R)
		for _, u := range a.FileWorkers(v) {
			replicas = append(replicas, workerGrads[u][v])
		}
		var res vote.Result
		var vErr error
		if a.R == 1 {
			res = vote.Result{Winner: replicas[0], Count: 1, Unanimous: true}
		} else if e.cfg.VoteTolerance > 0 {
			res, vErr = vote.MajorityWithTolerance(replicas, e.cfg.VoteTolerance)
		} else {
			res, vErr = vote.Majority(replicas)
		}
		if vErr != nil {
			return RoundStats{}, fmt.Errorf("cluster: vote on file %d: %w", v, vErr)
		}
		winners[v] = res.Winner
		if !e.cfg.SignMessages && !equalBits(res.Winner, trueGrads[v]) {
			distorted++
		}
	}
	update, err := e.cfg.Aggregator.Aggregate(winners)
	if err != nil {
		return RoundStats{}, fmt.Errorf("cluster: aggregation: %w", err)
	}
	if !e.cfg.SignMessages {
		// Winners are gradient sums over ~batch/f samples; normalize to
		// per-sample scale for the update (Algorithm 1, line 17).
		scale := float64(a.F) / float64(e.cfg.BatchSize)
		for i := range update {
			update[i] *= scale
		}
	}
	aggTime := time.Since(aggStart)

	lr := e.cfg.Schedule.At(e.iter)
	e.opt.Step(e.params, update, e.iter)

	stats := RoundStats{
		Iteration:      e.iter,
		LR:             lr,
		DistortedFiles: distorted,
		Times: PhaseTimes{
			Compute:       computeTime,
			Communication: commTime,
			Aggregation:   aggTime,
			CommBytes:     commBytes,
		},
	}
	e.times.Add(stats.Times)
	e.iter++
	return stats, nil
}

// Run executes iterations rounds under ctx, evaluating test accuracy
// (and batch loss on a held-out probe) every evalEvery rounds plus at
// the end. The returned history contains one point per evaluation; on
// cancellation the partial history recorded so far is returned together
// with the context error.
func (e *Engine) Run(ctx context.Context, iterations, evalEvery int) (*trainer.History, error) {
	var h trainer.History
	if iterations < 1 {
		return &h, fmt.Errorf("cluster: iterations %d < 1", iterations)
	}
	if evalEvery < 1 {
		evalEvery = 1
	}
	for t := 0; t < iterations; t++ {
		if _, err := e.StepOnce(ctx); err != nil {
			return &h, err
		}
		if (t+1)%evalEvery == 0 || t == iterations-1 {
			h.Add(t+1, e.EvalLoss(), e.Evaluate())
		}
	}
	return &h, nil
}

// Evaluate returns the current test accuracy.
func (e *Engine) Evaluate() float64 {
	return model.Accuracy(e.cfg.Model, e.params, e.cfg.Test)
}

// EvalLoss returns the current training loss on the deterministic probe
// subset used for history reporting.
func (e *Engine) EvalLoss() float64 {
	return e.cfg.Model.Loss(e.params, e.cfg.Train, e.probeIndices())
}

// probeIndices returns a fixed subset of the training set used for loss
// reporting (cheap and deterministic).
func (e *Engine) probeIndices() []int {
	n := e.cfg.Train.Len()
	size := 256
	if size > n {
		size = n
	}
	idx := make([]int, size)
	stride := n / size
	if stride < 1 {
		stride = 1
	}
	for i := range idx {
		idx[i] = (i * stride) % n
	}
	return idx
}

// workerMessage is the wire format of one worker's per-round report.
type workerMessage struct {
	Worker    int
	Files     []int
	Gradients [][]float64
}

// roundTripMessage gob-encodes and decodes a worker's gradients,
// physically exercising the serialization cost of the communication
// phase, and returns the message size in bytes.
func roundTripMessage(u int, grads map[int][]float64) (map[int][]float64, int64, error) {
	msg := workerMessage{Worker: u}
	for v := range grads {
		msg.Files = append(msg.Files, v)
	}
	// Deterministic order.
	sortInts(msg.Files)
	for _, v := range msg.Files {
		msg.Gradients = append(msg.Gradients, grads[v])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		return nil, 0, err
	}
	size := int64(buf.Len())
	var decoded workerMessage
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		return nil, 0, err
	}
	out := make(map[int][]float64, len(decoded.Files))
	for i, v := range decoded.Files {
		out[v] = decoded.Gradients[i]
	}
	return out, size, nil
}

// signVec maps a vector to coordinate signs in {−1, 0, 1}.
func signVec(g []float64) []float64 {
	out := make([]float64, len(g))
	for i, v := range g {
		switch {
		case v > 0:
			out[i] = 1
		case v < 0:
			out[i] = -1
		}
	}
	return out
}

// equalBits compares vectors by IEEE-754 bit patterns, matching the
// exact-vote equality semantics.
func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sortInts is a tiny insertion sort to avoid importing sort for hot
// small slices.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
