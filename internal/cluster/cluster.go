// Package cluster implements the synchronous parameter-server training
// protocol of Algorithm 1 as a shared round core: per round, the PS
// samples a batch, partitions it into files according to the assignment
// graph, a GradientSource supplies each worker's file gradient sums
// (computed in process by the engine's own pool, or received over TCP
// by internal/transport's parameter server), the PS majority-votes each
// file's surviving replicas (Eq. 3) under a quorum rule, applies a
// robust aggregation rule to the vote winners, and updates the model
// with momentum SGD. Both execution paths — in-process and wire — run
// the identical core, so they produce bit-identical parameter
// trajectories for a fixed seed.
//
// The engine is a steady-state machine: a persistent worker goroutine
// pool executes the compute, vote, and (for coordinate-wise rules)
// aggregation phases, and a preallocated gradient arena is reused across
// rounds, so the hot path performs no gradient-sized allocation (see
// DESIGN.md "Performance architecture"). The serial engine
// (Parallelism = 1) and the pooled engine produce bit-identical
// parameter trajectories for a fixed seed. The redundant computation
// cost of replication is real, not simulated, and the communication
// phase can be physically measured by encoding and decoding every
// worker→PS message through the compact binary gradient-frame codec of
// internal/wire, so the Figure 12
// computation/communication/aggregation split is observed, not modelled.
//
// Rounds tolerate partial participation: a fault model (internal/fault)
// or a network source may remove workers mid-run; files whose surviving
// replica count still meets the quorum are voted over the survivors,
// files below quorum are dropped from aggregation, and RoundStats
// reports the missing workers and degraded/dropped file counts.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/detect"
	"byzshield/internal/fault"
	"byzshield/internal/model"
	"byzshield/internal/obs"
	"byzshield/internal/trainer"
	"byzshield/internal/vote"
	"byzshield/internal/wire"
)

// ErrClosed is returned by StepOnce after Close.
var ErrClosed = errors.New("cluster: engine closed")

// Config assembles one training experiment.
type Config struct {
	Assignment *assign.Assignment
	Model      model.Model
	Train      *data.Dataset
	Test       *data.Dataset
	BatchSize  int
	// Distribution switches the batch stream to non-IID sampling: the
	// distributor splits the training set into F per-file sample pools
	// once at construction, and each round's batch draws file v's share
	// from pool v (data.PoolSampler), so per-file gradients reflect the
	// configured label heterogeneity. nil keeps the default IID
	// reshuffling sampler, whose sample stream is unchanged by this
	// knob's existence.
	Distribution data.Distributor
	// Attack crafts Byzantine payloads; Benign{} for attack-free runs.
	Attack attack.Attack
	// Byzantines lists the corrupted worker ids (chosen worst-case by
	// the caller, typically via distort.WorstCaseByzantines).
	Byzantines []int
	// Aggregator is applied to the vote winners (or directly to worker
	// gradients when the assignment has r = 1).
	Aggregator aggregate.Aggregator
	Schedule   trainer.Schedule
	Momentum   float64
	Seed       int64
	// SignMessages makes workers transmit coordinate signs instead of
	// gradient values (the signSGD pipeline). The aggregated sign vector
	// is applied directly (scaled only by the learning rate).
	SignMessages bool
	// UplinkTier pins the in-process engine to one worker→PS codec tier
	// (wire.UplinkTier). The lossless tiers (TierDelta, the zero value,
	// and TierRaw) are no-ops here — compression is a wire concern
	// invisible to training — but a lossy tier (TierSign, TierInt8)
	// makes every collected gradient pass through the exact
	// quantize→dequantize float operations of the wire codec, per
	// aggregation-shard coordinate range, so the engine reproduces a
	// lossy-tier TCP run bit-for-bit (the loopback==engine pinning the
	// transport tests rely on). Mutually exclusive with SignMessages
	// (two different message semantics) and with Source (a network
	// source's workers quantize on their own side of the wire).
	UplinkTier wire.UplinkTier
	// VoteTolerance > 0 switches the vote to L∞ clustering mode.
	VoteTolerance float64
	// MeasureComm enables real binary serialization of worker messages
	// so the communication phase is physically measured.
	MeasureComm bool
	// BroadcastFullEvery controls the measured PS→worker parameter
	// broadcast under MeasureComm: 0 ships the full vector every round
	// (protocol v1 behavior), N > 0 ships the full vector on every N-th
	// round (and to workers that missed the previous round) and a
	// bit-exact XOR delta frame otherwise — the same policy the TCP
	// server applies on the real wire. Ignored without MeasureComm.
	BroadcastFullEvery int
	// Parallelism is the width of the engine's persistent goroutine
	// pool: 0 selects GOMAXPROCS, 1 runs every phase serially on the
	// calling goroutine. Any width produces bit-identical parameter
	// trajectories for a fixed seed.
	Parallelism int
	// Shards splits the parameter vector into N contiguous coordinate
	// ranges (wire.ShardRange) and gives each range its own vote and
	// aggregate state, so a network source can stream per-shard report
	// frames and vote a shard early while other shards still collect.
	// Any shard count produces bit-identical trajectories to the serial
	// engine (see shard.go for why); 0 or 1 disables the plane. Requires
	// exact bit-equality votes (VoteTolerance must be 0 — L∞ clustering
	// does not decompose across coordinate ranges).
	Shards int
	// PrepareAhead draws and partitions round t+1's batch before round
	// t's collection opens and hands the prepared file table to the
	// source if it implements RoundPreparer (the TCP server piggybacks
	// round t+1's sample lists on round t's own broadcast frames, which
	// is what pipelines the wire rounds). The sample stream order is
	// unchanged — the seeded sampler is still consumed in strict round
	// order — so trajectories stay bit-identical.
	PrepareAhead bool
	// Fault injects worker participation faults (crash, flaky skips)
	// into the in-process source; nil runs fault-free. Incompatible with
	// Source, which owns participation itself.
	Fault fault.Fault
	// Quorum is the minimum surviving replicas a file needs to be voted
	// this round: files with fewer live replicas than Quorum are dropped
	// from aggregation, files with at least Quorum but fewer than R are
	// voted over the survivors (a degraded vote). 0 selects the majority
	// of the nominal replication, R/2 + 1.
	Quorum int
	// Detector enables the PS-side Byzantine detection and reputation
	// layer (internal/detect): after every collection the engine sums
	// each live worker's replicas into a report, derives robust history
	// features, and lets the detector flag outliers; persistently
	// flagged workers are blacklisted out of all later rounds. nil (or
	// detect.None) disables the pipeline entirely. Unlike the in-process
	// attack knobs, detection is a PS-side behavior and composes with
	// Source.
	Detector detect.Detector
	// Detection tunes the reputation policy (window, decay, blacklist
	// floor); zero fields select the documented detect defaults.
	Detection detect.Params
	// Source overrides how gradients enter the round: nil selects the
	// in-process compute source (Algorithm 1's simulated cluster); the
	// TCP parameter server installs its network collector here. When
	// Source is set, the in-process-only knobs (Attack, Byzantines,
	// SignMessages, VoteTolerance, MeasureComm, Fault) must be unset —
	// in a real deployment those behaviors belong to the workers, not
	// the PS.
	Source GradientSource
	// Metrics, when non-nil, registers the engine's instruments (round
	// counter, per-phase latency histograms, file-outcome counters,
	// arena occupancy, a per-round heap-allocation guard) at
	// construction. Every hot-path update is an atomic store into that
	// preallocated state, so enabling metrics does not move the
	// steady-state allocation budget (pinned by
	// TestSteadyStateAllocsPerRound) and cannot perturb trajectories.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one obs.RoundTrace per round —
	// phase spans, byte counts, and the missing/flagged/blacklisted
	// worker sets — into its bounded ring (and JSONL sink, when set).
	// Recording reuses ring-owned storage, so it is alloc-free in
	// steady state too.
	Tracer *obs.Tracer
}

// PhaseTimes accumulates wall-clock time per protocol phase, plus the
// exact number of serialized worker→PS bytes (deterministic, unlike the
// wall-clock figures).
type PhaseTimes struct {
	Compute       time.Duration
	Communication time.Duration
	Aggregation   time.Duration
	// Detect is the detection/reputation pass (report summing, feature
	// extraction, the detector verdict) between collection and
	// aggregation; zero when no detector is configured. Kept separate
	// from Aggregation so the Figure-12 phase split stays honest.
	Detect time.Duration
	// ReportBytes counts the serialized worker→PS gradient-report bytes
	// as they move (or are measured) on the wire — compressed uplink
	// frames where the codec chose a delta, raw frames otherwise.
	ReportBytes int64
	// ReportRawBytes is what the same reports would have cost as raw
	// frames; ReportBytes/ReportRawBytes is the realized uplink
	// compression ratio (1.0 when every frame fell back to raw).
	ReportRawBytes int64
	// BroadcastBytes counts the serialized PS→worker parameter
	// broadcast (full or delta frames) when the source measures it.
	BroadcastBytes int64
}

// Add accumulates other into t.
func (t *PhaseTimes) Add(other PhaseTimes) {
	t.Compute += other.Compute
	t.Communication += other.Communication
	t.Aggregation += other.Aggregation
	t.Detect += other.Detect
	t.ReportBytes += other.ReportBytes
	t.ReportRawBytes += other.ReportRawBytes
	t.BroadcastBytes += other.BroadcastBytes
}

// RoundStats reports one protocol round.
type RoundStats struct {
	Iteration      int
	LR             float64
	DistortedFiles int // files whose vote the Byzantines won this round
	// MissingWorkers lists the workers that did not participate this
	// round (crashed, skipped, or past the collection deadline), sorted
	// ascending; nil on full-participation rounds.
	MissingWorkers []int
	// DegradedFiles counts files voted over fewer than R surviving
	// replicas (quorum still met).
	DegradedFiles int
	// DroppedFiles counts files excluded from aggregation: surviving
	// replicas below the quorum, or a degraded vote that ended in a tie
	// (no strict plurality among the survivors).
	DroppedFiles int
	// AggregatorDegraded reports that dropped files pushed the
	// configured Byzantine-aware rule (Krum family, trimmed mean, …)
	// below its feasibility floor this round, so the round aggregated
	// with coordinate-wise median instead of erroring out.
	AggregatorDegraded bool
	// Rejoins counts workers re-admitted at this round's boundary
	// (network sources only).
	Rejoins int
	// Evictions counts worker connections torn down during this round
	// (broken streams, protocol violations; network sources only).
	Evictions int
	// StaleFrames counts gradient reports that arrived too late for
	// their round and were retired without entering any vote (network
	// sources only; the reader pumps retire them the moment they land).
	StaleFrames int
	// MeanReputation is the fleet-wide mean reputation after this
	// round's detection pass; 1 when detection is off.
	MeanReputation float64
	// FlaggedWorkers counts workers the detector flagged this round.
	FlaggedWorkers int
	// BlacklistedWorkers lists workers newly blacklisted this round,
	// ascending; nil on rounds without a fresh blacklisting.
	BlacklistedWorkers []int
	// Blacklisted is the cumulative blacklist size after this round.
	Blacklisted int
	Times       PhaseTimes
}

// Engine executes the protocol.
type Engine struct {
	cfg         Config
	src         GradientSource
	params      []float64
	opt         *trainer.SGD
	sampler     batchSource
	byzSet      map[int]bool
	honest      []int // sorted non-Byzantine worker ids
	corruptible []int // files with ≥ r' Byzantine replicas (static per run)
	quorum      int   // minimum surviving replicas for a file vote
	iter        int
	times       PhaseTimes
	pool        *pool // nil when Parallelism == 1
	width       int   // pool width (1 when serial)
	arena       *roundArena
	// rd is the persistent Round view handed to the source each
	// iteration (only its files table changes per round).
	rd Round
	// atkRng and atkCtx are the reusable attack-oracle state: the rng
	// is reseeded per round (identical stream to a freshly constructed
	// one) and the context struct is updated in place, so the Byzantine
	// path allocates nothing in steady state.
	atkRng *rand.Rand
	atkCtx attack.Context
	atkScr attack.Scratch
	// atkCoord is the in-process moment coordinator backing omniscient
	// attacks; the same seam the cross-process sidecar fills over TCP.
	atkCoord attack.Loopback
	// det and detSt are the detection/reputation layer; both nil when
	// detection is off (detect.None or unset).
	det   detect.Detector
	detSt *detect.State
	// plane is the sharded aggregation plane (nil when Shards <= 1).
	plane *shardPlane
	// pendingFiles/spareFiles/preparedIter/prepErr are the prepare-ahead
	// state: pendingFiles holds the next round's partitioned file table
	// (always the next batch in sampler stream order), spareFiles is the
	// retired table recycled by the next prepare, and prepErr defers a
	// preparation failure to the next StepOnce boundary. prepBatch is a
	// pair of alternating batch copies: the sampler owns its Next buffer
	// and overwrites it on the following draw, and a file table aliases
	// the batch it was partitioned from — so when a round draws ahead
	// (prepare-ahead runs before the current round's collection), each
	// live table must sit on its own copy. Two buffers suffice: table t
	// is dead before the prepare in round t+1 reuses its buffer.
	pendingFiles [][]int
	spareFiles   [][]int
	prepBatch    [2][]int
	prepFlip     int
	preparedIter int
	prepErr      error
	// ins holds the preallocated metric instruments (nil when
	// Config.Metrics is unset); tracer and trace are the round tracer
	// and its engine-owned scratch record (trace's worker-set slices are
	// preallocated at cap K so filling them never allocates).
	ins       *engineInstruments
	tracer    *obs.Tracer
	trace     obs.RoundTrace
	closeOnce sync.Once
	closed    bool
}

// New validates the configuration and initializes the engine, including
// its gradient arena and worker pool. Callers that create many engines
// should Close each one to release the pool goroutines.
func New(cfg Config) (*Engine, error) {
	if cfg.Assignment == nil || cfg.Model == nil || cfg.Train == nil || cfg.Test == nil {
		return nil, fmt.Errorf("cluster: assignment, model, train and test are required")
	}
	if err := cfg.Assignment.Validate(); err != nil {
		return nil, err
	}
	if cfg.Aggregator == nil {
		return nil, fmt.Errorf("cluster: aggregator is required")
	}
	if cfg.Source != nil {
		if cfg.Attack != nil || len(cfg.Byzantines) > 0 || cfg.SignMessages ||
			cfg.VoteTolerance != 0 || cfg.MeasureComm || cfg.Fault != nil ||
			cfg.UplinkTier != wire.TierDelta {
			return nil, fmt.Errorf("cluster: Attack/Byzantines/SignMessages/VoteTolerance/MeasureComm/Fault/UplinkTier " +
				"are in-process source knobs; they must be unset when Source is provided")
		}
	}
	if !cfg.UplinkTier.Valid() {
		return nil, fmt.Errorf("cluster: unknown uplink tier %d", cfg.UplinkTier)
	}
	if cfg.UplinkTier.Lossy() && cfg.SignMessages {
		return nil, fmt.Errorf("cluster: SignMessages and a lossy uplink tier are mutually exclusive message semantics")
	}
	if cfg.Attack == nil {
		cfg.Attack = attack.Benign{}
	}
	if _, ok := cfg.Fault.(fault.None); ok {
		// The explicit no-fault model is the same as no fault model at
		// all; normalizing here keeps the full-oracle arena allocation
		// reserved for runs that can actually lose replicas.
		cfg.Fault = nil
	}
	if cfg.BatchSize < cfg.Assignment.F {
		return nil, fmt.Errorf("cluster: batch size %d smaller than file count %d", cfg.BatchSize, cfg.Assignment.F)
	}
	if err := cfg.Train.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: train set: %w", err)
	}
	if err := cfg.Test.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: test set: %w", err)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("cluster: parallelism %d < 0", cfg.Parallelism)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: shards %d < 0", cfg.Shards)
	}
	if cfg.Shards > 1 && cfg.VoteTolerance != 0 {
		return nil, fmt.Errorf("cluster: sharded voting requires exact bit-equality votes; VoteTolerance must be 0")
	}
	if cfg.BroadcastFullEvery < 0 {
		return nil, fmt.Errorf("cluster: broadcast full-every %d < 0", cfg.BroadcastFullEvery)
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = cfg.Assignment.R/2 + 1
	}
	if quorum < 1 || quorum > cfg.Assignment.R {
		return nil, fmt.Errorf("cluster: quorum %d outside [1,%d]", cfg.Quorum, cfg.Assignment.R)
	}
	byzSet := make(map[int]bool, len(cfg.Byzantines))
	for _, u := range cfg.Byzantines {
		if u < 0 || u >= cfg.Assignment.K {
			return nil, fmt.Errorf("cluster: byzantine worker %d out of range [0,%d)", u, cfg.Assignment.K)
		}
		if byzSet[u] {
			return nil, fmt.Errorf("cluster: byzantine worker %d listed twice", u)
		}
		byzSet[u] = true
	}
	sampler, err := newBatchSource(&cfg)
	if err != nil {
		return nil, err
	}
	opt, err := trainer.NewSGD(cfg.Schedule, cfg.Momentum, cfg.Model.NumParams())
	if err != nil {
		return nil, err
	}
	width := cfg.Parallelism
	if width == 0 {
		width = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:          cfg,
		params:       model.InitParams(cfg.Model, cfg.Seed),
		opt:          opt,
		sampler:      sampler,
		byzSet:       byzSet,
		quorum:       quorum,
		width:        width,
		preparedIter: -1,
	}
	for u := 0; u < cfg.Assignment.K; u++ {
		if !byzSet[u] {
			e.honest = append(e.honest, u)
		}
	}
	e.corruptible = e.computeCorruptible()
	if !detect.IsNone(cfg.Detector) {
		e.det = cfg.Detector
		e.detSt = detect.NewState(cfg.Assignment.K, cfg.Model.NumParams(), cfg.Detection)
	}
	// A fault model or a live detector can both remove workers mid-run
	// (faults by plan, detection by blacklist), so either forces the
	// full-oracle arena: any file's live honest replicas may vanish.
	e.arena = newRoundArena(cfg.Assignment, cfg.Model.NumParams(), byzSet, cfg.MeasureComm, cfg.Fault != nil || e.det != nil, width)
	for u := range e.arena.upEnc {
		e.arena.upEnc[u].Tier = cfg.UplinkTier
		e.arena.upDec[u].Tier = cfg.UplinkTier
	}
	if n := wire.ShardCount(cfg.Shards, cfg.Model.NumParams()); n > 1 {
		e.plane = newShardPlane(n, cfg.Model.NumParams(), cfg.Assignment.F, cfg.Assignment.K)
	}
	e.rd = Round{eng: e}
	if len(byzSet) > 0 {
		e.atkRng = rand.New(rand.NewSource(cfg.Seed))
	}
	// Probe indices are initialized eagerly so snapshot evaluation
	// (EvalLossParams) is safe from a background goroutine while the
	// serve loop keeps stepping rounds.
	e.arena.probe = data.ProbeIndices(cfg.Train.Len())
	if width > 1 {
		e.pool = newPool(width)
	}
	e.src = cfg.Source
	if e.src == nil {
		e.src = localSource{e: e}
	}
	if cfg.Metrics != nil {
		e.ins = newEngineInstruments(cfg.Metrics, e)
		if e.detSt != nil {
			e.detSt.SetInstruments(detect.NewInstruments(cfg.Metrics))
		}
	}
	if cfg.Tracer != nil {
		e.tracer = cfg.Tracer
		e.trace.Missing = make([]int, 0, cfg.Assignment.K)
		e.trace.Flagged = make([]int, 0, cfg.Assignment.K)
		e.trace.Blacklisted = make([]int, 0, cfg.Assignment.K)
	}
	return e, nil
}

// Close releases the engine's worker pool goroutines. The engine must
// not be stepped concurrently with Close; StepOnce afterwards returns
// ErrClosed. Close is idempotent.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.closed = true
		if e.pool != nil {
			e.pool.close()
		}
	})
	return nil
}

// batchSource is the per-round batch stream: the IID reshuffling
// sampler by default, the per-pool non-IID sampler under a configured
// Distribution. Both are deterministic in the seed and stepped in
// strict round order, which is what checkpoint fast-forwarding and
// prepare-ahead rely on.
type batchSource interface {
	Next() []int
}

// newBatchSource builds the config's batch stream; called identically
// at construction and on every Restore so a restored engine replays the
// exact stream of the interrupted run.
func newBatchSource(cfg *Config) (batchSource, error) {
	if cfg.Distribution == nil {
		return data.NewBatchSampler(cfg.Train.Len(), cfg.BatchSize, cfg.Seed)
	}
	pools, err := cfg.Distribution.Split(cfg.Train, cfg.Assignment.F)
	if err != nil {
		return nil, fmt.Errorf("cluster: distribution %s: %w", cfg.Distribution.Name(), err)
	}
	return data.NewPoolSampler(pools, cfg.BatchSize, cfg.Seed)
}

// runPhase executes fn(worker, task) for task in [0, n): inline on the
// calling goroutine for the serial engine, across the persistent pool
// otherwise. Tasks must be independent, which is also what makes the two
// execution modes bit-identical.
func (e *Engine) runPhase(n int, fn func(worker, task int)) {
	if e.pool == nil {
		for t := 0; t < n; t++ {
			fn(0, t)
		}
		return
	}
	e.pool.run(n, fn)
}

// computeCorruptible returns the files with at least r' Byzantine
// replicas under the configured Byzantine set.
func (e *Engine) computeCorruptible() []int {
	a := e.cfg.Assignment
	rp := a.R/2 + 1
	var out []int
	for v := 0; v < a.F; v++ {
		c := 0
		for _, u := range a.FileWorkers(v) {
			if e.byzSet[u] {
				c++
			}
		}
		if c >= rp {
			out = append(out, v)
		}
	}
	return out
}

// CorruptibleFiles returns the files whose votes the Byzantines control.
func (e *Engine) CorruptibleFiles() []int {
	return append([]int(nil), e.corruptible...)
}

// DistortionFraction returns ε̂ = |corruptible| / f for this run.
func (e *Engine) DistortionFraction() float64 {
	return float64(len(e.corruptible)) / float64(e.cfg.Assignment.F)
}

// Params returns the current model parameters (a copy).
func (e *Engine) Params() []float64 {
	out := make([]float64, len(e.params))
	copy(out, e.params)
	return out
}

// Times returns accumulated per-phase wall-clock times.
func (e *Engine) Times() PhaseTimes { return e.times }

// Iteration returns the next iteration index to execute.
func (e *Engine) Iteration() int { return e.iter }

// Snapshot captures the restartable training state (parameters,
// momentum, iteration) for checkpointing.
func (e *Engine) Snapshot() (params, velocity []float64, iteration int) {
	return e.Params(), e.opt.Velocity(), e.iter
}

// Restore resumes from a snapshot taken by Snapshot. Dimensions must
// match the engine's model. The batch sampler is rebuilt from the
// engine's seed and fast-forwarded to the snapshot iteration, so a
// restore into a freshly constructed engine continues the exact sample
// stream of the interrupted run — no round replay is needed.
func (e *Engine) Restore(params, velocity []float64, iteration int) error {
	if len(params) != len(e.params) {
		return fmt.Errorf("cluster: restore params length %d, want %d", len(params), len(e.params))
	}
	if iteration < 0 {
		return fmt.Errorf("cluster: restore iteration %d < 0", iteration)
	}
	if len(velocity) > 0 {
		if err := e.opt.SetVelocity(velocity); err != nil {
			return err
		}
	}
	sampler, err := newBatchSource(&e.cfg)
	if err != nil {
		return err
	}
	for t := 0; t < iteration; t++ {
		sampler.Next()
	}
	e.sampler = sampler
	copy(e.params, params)
	e.iter = iteration
	// Any prepared-ahead batch belongs to the abandoned sample stream;
	// the rebuilt sampler re-draws it, so the pending table is recycled.
	if e.pendingFiles != nil {
		e.spareFiles = e.pendingFiles
		e.pendingFiles = nil
	}
	e.preparedIter = -1
	e.prepErr = nil
	return nil
}

// CheckFeasible verifies that the configured aggregator's Byzantine
// preconditions hold for this run's operand count and worst-case
// corruption — the applicability constraints the paper runs into
// ("Bulyan cannot be paired with DETOX for q ≥ 1 ...").
func (e *Engine) CheckFeasible() error {
	ba, ok := e.cfg.Aggregator.(aggregate.ByzAware)
	if !ok {
		return nil
	}
	n := e.cfg.Assignment.F // operands after voting
	c := len(e.corruptible)
	return ba.Feasible(n, c)
}

// RunRound executes one protocol round and returns its statistics.
func (e *Engine) RunRound() (RoundStats, error) {
	return e.StepOnce(context.Background())
}

// StepOnce executes one protocol round under the given context.
// Cancellation is checked at the round boundary — a canceled context
// returns before any state (sampler, optimizer, iteration counter)
// mutates, so the engine always sits exactly between rounds and can be
// resumed or checkpointed after a cancellation. (A network source may
// additionally fail mid-collection, e.g. on cancellation while blocked
// on sockets; such a round is aborted without an optimizer step and the
// error is surfaced.)
func (e *Engine) StepOnce(ctx context.Context) (RoundStats, error) {
	if err := ctx.Err(); err != nil {
		return RoundStats{}, err
	}
	if e.closed {
		return RoundStats{}, ErrClosed
	}
	if err := e.prepErr; err != nil {
		e.prepErr = nil
		return RoundStats{}, err
	}
	a := e.cfg.Assignment
	ar := e.arena

	// A prepared file table is always the next batch in sampler stream
	// order, so consuming it here is exactly what drawing it now would
	// produce — prepare-ahead never reorders the sample stream.
	var files [][]int
	if e.pendingFiles != nil {
		files = e.pendingFiles
		e.pendingFiles = nil
		e.spareFiles, ar.files = ar.files, files
	} else {
		batch := e.sampler.Next()
		if e.cfg.PrepareAhead {
			// This round prepares ahead below, and that draw overwrites
			// the sampler's batch buffer — which this round's file table
			// would otherwise alias.
			batch = e.copyBatch(batch)
		}
		f, err := data.PartitionFilesInto(batch, a.F, ar.files)
		if err != nil {
			return RoundStats{}, err
		}
		files = f
	}
	ar.files = files

	// --- Collection: the source computes (in process) or gathers (off
	// the wire) every participating worker's per-file gradient sums into
	// the arena and marks the workers that did not make it.
	for u := range ar.missing {
		ar.missing[u] = false
	}
	// Blacklisted workers are out of the protocol for good: marked
	// missing before collection so no source computes for (or waits on)
	// them.
	if e.detSt != nil {
		for _, u := range e.detSt.Blacklist() {
			ar.missing[u] = true
		}
	}
	if e.plane != nil {
		e.plane.beginRound()
	}
	e.rd.files = files

	// --- Prepare-ahead: draw and partition round t+1's batch before this
	// round's collection opens. The sample stream is data-independent
	// (a seeded sampler drawn in strict round order), so the draw can
	// move ahead of the collect without reordering anything — and a
	// RoundPreparer source can then piggyback round t+1's sample lists
	// on round t's own broadcast frames instead of paying a separate
	// write per worker during the tail.
	obsOn := e.ins != nil || e.tracer != nil
	var prepStart time.Time
	if obsOn {
		prepStart = time.Now()
	}
	e.prepareNext()
	var prepDur time.Duration
	var collectStart time.Time
	if obsOn {
		collectStart = time.Now()
		prepDur = collectStart.Sub(prepStart)
	}

	cs, err := e.src.Collect(ctx, &e.rd)
	if err != nil {
		return RoundStats{}, err
	}
	var collectDur time.Duration
	if obsOn {
		collectDur = time.Since(collectStart)
	}

	// --- Detection: between collection and aggregation, sum each live
	// worker's replicas into its report row (sharded across the pool;
	// each task owns one row, so any width observes identical features),
	// derive the round's robust features, and let the detector update
	// reputations. Workers blacklisted this round are removed before
	// their replicas can enter any vote.
	var detTime time.Duration
	if e.detSt != nil {
		detStart := time.Now()
		e.detSt.BeginRound()
		e.runPhase(a.K, func(_, u int) {
			if ar.missing[u] {
				return
			}
			r := e.detSt.Report(u)
			for _, g := range ar.cur[u] {
				for i, x := range g {
					r[i] += x
				}
			}
		})
		e.detSt.Observe(e.det)
		for _, u := range e.detSt.NewlyBlacklisted() {
			ar.missing[u] = true
		}
		detTime = time.Since(detStart)
	}

	// --- Aggregation phase: per-file majority votes over the surviving
	// replicas, sharded across the pool, then the robust aggregation
	// rule over the winners (coordinate-wise rules reduce in parallel
	// chunks). Files below the survivor quorum are dropped; files
	// between quorum and R vote degraded over the survivors.
	aggStart := time.Now()
	for w := 0; w < e.width; w++ {
		ar.distorted[w] = 0
		ar.degraded[w] = 0
		ar.dropped[w] = 0
		ar.voteErrs[w] = nil
	}
	if e.plane != nil {
		e.shardedVotePhase()
	} else {
		e.runPhase(a.F, e.voteFile)
	}
	// voteDur splits the aggregation span for the tracer/metrics; the
	// accumulated Times.Aggregation keeps its historical meaning
	// (vote + aggregate + scale).
	var voteDur time.Duration
	if obsOn {
		voteDur = time.Since(aggStart)
	}
	distorted, degraded, dropped := 0, 0, 0
	for w := 0; w < e.width; w++ {
		if ar.voteErrs[w] != nil {
			return RoundStats{}, ar.voteErrs[w]
		}
		distorted += ar.distorted[w]
		degraded += ar.degraded[w]
		dropped += ar.dropped[w]
	}
	live := ar.live[:0]
	for v := 0; v < a.F; v++ {
		if ar.winners[v] != nil {
			live = append(live, ar.winners[v])
		}
	}
	if len(live) == 0 {
		return RoundStats{}, fmt.Errorf("cluster: round %d: no file met the survivor quorum %d", e.iter, e.quorum)
	}
	// Feasibility under shrinkage: when dropped files push a
	// Byzantine-aware rule below its floor (Krum's n ≥ 2c+3 and kin) on
	// a round that would have been feasible at full participation,
	// degrade this round to coordinate-wise median instead of erroring —
	// a long-degraded run keeps training. A configuration that is
	// infeasible even at full strength still fails loudly.
	agg := e.cfg.Aggregator
	aggDegraded := false
	if ba, ok := agg.(aggregate.ByzAware); ok && len(live) < a.F {
		c := len(e.corruptible)
		if ba.Feasible(len(live), c) != nil && ba.Feasible(a.F, c) == nil {
			agg = aggregate.Median{}
			aggDegraded = true
		}
	}
	if err := e.aggregate(agg, live); err != nil {
		return RoundStats{}, fmt.Errorf("cluster: aggregation: %w", err)
	}
	if !e.cfg.SignMessages {
		// Winners are gradient sums over ~batch/f samples; normalize to
		// per-sample scale for the update (Algorithm 1, line 17).
		scale := data.PerSampleScale(a.F, e.cfg.BatchSize)
		if pl := e.plane; pl != nil {
			e.runPhase(pl.n, func(_, s int) {
				for i := pl.ranges[s][0]; i < pl.ranges[s][1]; i++ {
					ar.update[i] *= scale
				}
			})
		} else {
			for i := range ar.update {
				ar.update[i] *= scale
			}
		}
	}
	aggTime := time.Since(aggStart)

	lr := e.cfg.Schedule.At(e.iter)
	if pl := e.plane; pl != nil {
		// Each shard steps its own coordinate range; momentum SGD is
		// coordinate-wise, so any shard partition performs the identical
		// per-coordinate floating-point operations as the serial step.
		e.runPhase(pl.n, func(_, s int) {
			e.opt.StepChunk(e.params, ar.update, e.iter, pl.ranges[s][0], pl.ranges[s][1])
		})
	} else {
		e.opt.Step(e.params, ar.update, e.iter)
	}

	var missing []int
	for u := 0; u < a.K; u++ {
		if ar.missing[u] {
			missing = append(missing, u)
		}
	}
	stats := RoundStats{
		Iteration:          e.iter,
		LR:                 lr,
		DistortedFiles:     distorted,
		MissingWorkers:     missing,
		DegradedFiles:      degraded,
		DroppedFiles:       dropped,
		AggregatorDegraded: aggDegraded,
		Rejoins:            cs.Rejoins,
		Evictions:          cs.Evictions,
		StaleFrames:        cs.StaleFrames,
		MeanReputation:     1,
		Times: PhaseTimes{
			Compute:        cs.Compute,
			Communication:  cs.Communication,
			Aggregation:    aggTime,
			Detect:         detTime,
			ReportBytes:    cs.ReportBytes,
			ReportRawBytes: cs.ReportRawBytes,
			BroadcastBytes: cs.BroadcastBytes,
		},
	}
	if e.detSt != nil {
		stats.MeanReputation = e.detSt.MeanReputation()
		stats.FlaggedWorkers = len(e.detSt.Flagged())
		if nb := e.detSt.NewlyBlacklisted(); len(nb) > 0 {
			stats.BlacklistedWorkers = append([]int(nil), nb...)
		}
		stats.Blacklisted = e.detSt.BlacklistCount()
	}
	e.times.Add(stats.Times)
	if e.ins != nil {
		e.ins.observeRound(e, &stats, prepDur, collectDur, voteDur, aggTime, cs.Broadcast)
	}
	if e.tracer != nil {
		e.recordTrace(&stats, prepDur, collectDur, voteDur, aggTime, cs.Broadcast)
	}
	e.iter++
	return stats, nil
}

// recordTrace fills the engine-owned trace scratch from the round's
// stats and hands it to the tracer. The worker-set slices were
// preallocated at cap K, so this is alloc-free in steady state.
func (e *Engine) recordTrace(stats *RoundStats, prep, collect, vote, aggTotal time.Duration, broadcast time.Duration) {
	rt := &e.trace
	rt.Round = stats.Iteration
	rt.Shards = e.rd.Shards()
	rt.PhaseNS[obs.PhasePrep] = int64(prep)
	rt.PhaseNS[obs.PhaseBroadcast] = int64(broadcast)
	rt.PhaseNS[obs.PhaseCollect] = int64(collect)
	rt.PhaseNS[obs.PhaseVote] = int64(vote)
	rt.PhaseNS[obs.PhaseAggregate] = int64(aggTotal - vote)
	rt.PhaseNS[obs.PhaseDetect] = int64(stats.Times.Detect)
	rt.PhaseNS[obs.PhaseEval] = 0
	rt.ReportBytes = stats.Times.ReportBytes
	rt.ReportRawBytes = stats.Times.ReportRawBytes
	rt.BroadcastBytes = stats.Times.BroadcastBytes
	rt.DistortedFiles = stats.DistortedFiles
	rt.DegradedFiles = stats.DegradedFiles
	rt.DroppedFiles = stats.DroppedFiles
	rt.Rejoins = stats.Rejoins
	rt.Evictions = stats.Evictions
	rt.StaleFrames = stats.StaleFrames
	rt.MeanReputation = stats.MeanReputation
	rt.Missing = append(rt.Missing[:0], stats.MissingWorkers...)
	rt.Flagged = rt.Flagged[:0]
	if e.detSt != nil {
		rt.Flagged = append(rt.Flagged, e.detSt.Flagged()...)
	}
	rt.Blacklisted = append(rt.Blacklisted[:0], stats.BlacklistedWorkers...)
	e.tracer.Record(rt)
}

// voteFile runs the exact serial majority vote for file v using the
// width-w scratch rows, writing the winner and the per-slot
// degraded/dropped/distorted counters. It is both the pooled vote-phase
// task body and the sharded plane's per-file fallback (slot 0).
func (e *Engine) voteFile(w, v int) {
	ar := e.arena
	repl := ar.replicas[w][:0]
	workers := ar.replWorkers[w][:0]
	for _, ref := range ar.fileReplicas[v] {
		if ar.missing[ref.worker] {
			continue
		}
		repl = append(repl, ar.cur[ref.worker][ref.slot])
		workers = append(workers, ref.worker)
	}
	if len(repl) < e.quorum {
		ar.winners[v] = nil
		ar.dropped[w]++
		return
	}
	degradedVote := len(repl) < len(ar.fileReplicas[v])
	var res vote.Result
	var vErr error
	switch {
	case len(repl) == 1:
		res = vote.Result{Winner: repl[0], Count: 1, Unanimous: true}
	case e.cfg.VoteTolerance > 0:
		res, vErr = vote.MajorityWithTolerance(repl, e.cfg.VoteTolerance)
	default:
		res, vErr = vote.Majority(repl)
	}
	if vErr != nil {
		if ar.voteErrs[w] == nil {
			ar.voteErrs[w] = fmt.Errorf("cluster: vote on file %d: %w", v, vErr)
		}
		return
	}
	if degradedVote {
		if res.Tied && e.detSt != nil {
			// Reputation-weighted runoff: with a detection layer the
			// PS knows how much it trusts each supporter, so a tied
			// degraded vote elects the candidate whose supporters
			// carry strictly more total reputation — recovering files
			// that would otherwise drop once the attackers' scores
			// have collapsed.
			if win, ok := e.resolveDegradedTie(repl, workers); ok {
				res.Winner = win
				res.Tied = false
			}
		}
		if res.Tied {
			// A degraded vote with no strict plurality is
			// indistinguishable from an attacker-controlled one:
			// losing one honest replica of a [byz, honest, honest]
			// file leaves a 1–1 tie whose deterministic index
			// tie-break could elect the crafted payload every round.
			// Drop the file instead of guessing.
			ar.winners[v] = nil
			ar.dropped[w]++
			return
		}
		ar.degraded[w]++
	}
	ar.winners[v] = res.Winner
	// Distorted-file accounting compares winners against the unquantized
	// true gradients, so it is meaningless (every file would differ)
	// when a lossy uplink tier quantized the collected replicas.
	if !e.cfg.SignMessages && !e.cfg.UplinkTier.Lossy() &&
		ar.trueGrads[v] != nil && !equalBits(res.Winner, ar.trueGrads[v]) {
		ar.distorted[w]++
	}
}

// prepareNext draws and partitions the next round's batch into the
// spare file table and, when the source consumes prepared rounds,
// hands it over for an early broadcast. A preparation failure is
// deferred to the next StepOnce boundary (the current round is already
// collected and completes normally). No-op unless PrepareAhead is set.
func (e *Engine) prepareNext() {
	if !e.cfg.PrepareAhead || e.prepErr != nil || e.pendingFiles != nil {
		return
	}
	// The ahead table must outlive the sampler's buffer: the current
	// round is still collecting on the previous draw, and the draw after
	// this one happens while this table is still the live round.
	batch := e.copyBatch(e.sampler.Next())
	files, err := data.PartitionFilesInto(batch, e.cfg.Assignment.F, e.spareFiles)
	if err != nil {
		e.prepErr = err
		return
	}
	e.spareFiles = nil
	e.pendingFiles = files
	e.preparedIter = e.iter + 1
	if p, ok := e.src.(RoundPreparer); ok {
		p.PrepareNext(e.preparedIter, files)
	}
}

// copyBatch copies a freshly drawn batch into one of two alternating
// engine-owned buffers, so a file table partitioned from it survives
// the sampler's next draw (see the prepBatch field).
func (e *Engine) copyBatch(batch []int) []int {
	b := &e.prepBatch[e.prepFlip]
	e.prepFlip ^= 1
	*b = append((*b)[:0], batch...)
	return *b
}

// resolveDegradedTie elects among a tied degraded vote's replicas by
// supporter reputation: candidates are grouped by bit-exact equality,
// each group scored with the summed reputation of its supporters, and
// the strictly best group wins. A reputation tie keeps the vote tied
// (the caller drops the file). Replica counts are at most R, so the
// quadratic grouping is trivial.
func (e *Engine) resolveDegradedTie(repl [][]float64, workers []int) ([]float64, bool) {
	best := -1
	bestRep := 0.0
	unique := false
	for i := range repl {
		dup := false
		for j := 0; j < i; j++ {
			if equalBits(repl[j], repl[i]) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sum := 0.0
		for j := i; j < len(repl); j++ {
			if equalBits(repl[i], repl[j]) {
				sum += e.detSt.Reputation(workers[j])
			}
		}
		switch {
		case best < 0 || sum > bestRep:
			best, bestRep, unique = i, sum, true
		case sum == bestRep:
			unique = false
		}
	}
	if best >= 0 && unique {
		return repl[best], true
	}
	return nil, false
}

// BlacklistedWorker reports whether the detection layer has blacklisted
// worker u; always false when detection is off. The TCP server consults
// this to refuse rejoin tokens of evicted outliers.
func (e *Engine) BlacklistedWorker(u int) bool {
	return e.detSt != nil && e.detSt.Blacklisted(u)
}

// MeanReputation returns the fleet-wide mean reputation (1 when
// detection is off).
func (e *Engine) MeanReputation() float64 {
	if e.detSt == nil {
		return 1
	}
	return e.detSt.MeanReputation()
}

// Reputation returns worker u's current reputation score (1 when
// detection is off). The TCP server mirrors it into the fleet table
// after every round.
func (e *Engine) Reputation(u int) float64 {
	if e.detSt == nil {
		return 1
	}
	return e.detSt.Reputation(u)
}

// ObservePhase feeds a phase-latency observation into the engine's
// metric instruments and is safe to call with metrics disabled (no-op).
// The TCP server uses it for spans the engine cannot see itself — the
// asynchronous held-out evaluation.
func (e *Engine) ObservePhase(p obs.Phase, d time.Duration) {
	if e.ins != nil {
		e.ins.phase[p].Observe(d.Seconds())
	}
}

// aggregate reduces the vote winners into the arena's update vector
// with the given rule (the configured aggregator, or the median
// fallback on feasibility-degraded rounds). Coordinate-wise rules
// (aggregate.ChunkAggregator) reduce in parallel chunks across the
// pool — bit-identical to a serial pass because every coordinate is
// reduced independently; other rules run their ordinary Aggregate.
func (e *Engine) aggregate(agg aggregate.Aggregator, winners [][]float64) error {
	ca, ok := agg.(aggregate.ChunkAggregator)
	// The sharded plane aggregates along its own coordinate ranges so a
	// shard's reduce can later move out of process; errors are collected
	// per shard and surfaced lowest-shard-first.
	if ok && e.plane != nil {
		pl := e.plane
		for s := 0; s < pl.n; s++ {
			pl.aggErr[s] = nil
		}
		e.runPhase(pl.n, func(_, s int) {
			pl.aggErr[s] = ca.AggregateChunk(winners, e.arena.update, pl.ranges[s][0], pl.ranges[s][1])
		})
		for s := 0; s < pl.n; s++ {
			if pl.aggErr[s] != nil {
				return pl.aggErr[s]
			}
		}
		return nil
	}
	if !ok || e.pool == nil {
		if ok {
			return ca.AggregateChunk(winners, e.arena.update, 0, e.arena.dim)
		}
		update, err := agg.Aggregate(winners)
		if err != nil {
			return err
		}
		copy(e.arena.update, update)
		return nil
	}
	dim := e.arena.dim
	chunks := e.width
	if chunks > dim {
		chunks = dim
	}
	per := (dim + chunks - 1) / chunks
	// Errors are recorded per chunk index, not per pool worker: the
	// pool's worker→chunk mapping is scheduling-dependent, so keying by
	// worker slot would surface a different error run to run. Keying by
	// chunk and scanning ascending makes serial and pooled failing runs
	// report the same (lowest-range) error. chunks <= width, so the
	// voteErrs scratch is wide enough.
	errs := e.arena.voteErrs
	for c := 0; c < chunks; c++ {
		errs[c] = nil
	}
	e.runPhase(chunks, func(_, c int) {
		lo := c * per
		hi := lo + per
		if hi > dim {
			hi = dim
		}
		if lo >= hi {
			return
		}
		errs[c] = ca.AggregateChunk(winners, e.arena.update, lo, hi)
	})
	for c := 0; c < chunks; c++ {
		if errs[c] != nil {
			return errs[c]
		}
	}
	return nil
}

// Run executes iterations rounds under ctx, evaluating test accuracy
// (and batch loss on a held-out probe) every evalEvery rounds plus at
// the end. The returned history contains one point per evaluation; on
// cancellation the partial history recorded so far is returned together
// with the context error.
func (e *Engine) Run(ctx context.Context, iterations, evalEvery int) (*trainer.History, error) {
	var h trainer.History
	if iterations < 1 {
		return &h, fmt.Errorf("cluster: iterations %d < 1", iterations)
	}
	if evalEvery < 1 {
		evalEvery = 1
	}
	for t := 0; t < iterations; t++ {
		if _, err := e.StepOnce(ctx); err != nil {
			return &h, err
		}
		if (t+1)%evalEvery == 0 || t == iterations-1 {
			h.Add(t+1, e.EvalLoss(), e.Evaluate())
		}
	}
	return &h, nil
}

// Evaluate returns the current test accuracy.
func (e *Engine) Evaluate() float64 {
	return e.EvaluateParams(e.params)
}

// EvalLoss returns the current training loss on the deterministic probe
// subset used for history reporting.
func (e *Engine) EvalLoss() float64 {
	return e.EvalLossParams(e.params)
}

// EvaluateParams returns the test accuracy of an arbitrary parameter
// vector. Safe to call from a goroutine concurrent with StepOnce when
// params is a caller-owned snapshot (the TCP server evaluates off the
// serve loop this way so workers don't idle between rounds).
func (e *Engine) EvaluateParams(params []float64) float64 {
	return model.Accuracy(e.cfg.Model, params, e.cfg.Test)
}

// EvalLossParams returns the probe-subset training loss of an arbitrary
// parameter vector; the same concurrency contract as EvaluateParams.
func (e *Engine) EvalLossParams(params []float64) float64 {
	return e.cfg.Model.Loss(params, e.cfg.Train, e.arena.probe)
}

// quantizeUplink applies the configured lossy uplink tier's exact
// quantize→dequantize float operations to one full-dimension gradient
// row — per aggregation-shard coordinate range, because a sharded wire
// worker frames each shard independently and every lossy row carries
// its own scale parameters, so the quantization granularity must match
// the wire's framing for the engine to reproduce a TCP run bit for
// bit. Not idempotent in floating point: callers apply it exactly once
// per distinct buffer.
func (e *Engine) quantizeUplink(g []float64) {
	quant := wire.SignQuantizeInPlace
	if e.cfg.UplinkTier == wire.TierInt8 {
		quant = wire.Int8QuantizeInPlace
	}
	if pl := e.plane; pl != nil {
		for s := 0; s < pl.n; s++ {
			quant(g[pl.ranges[s][0]:pl.ranges[s][1]])
		}
		return
	}
	quant(g)
}

// signInPlace maps a vector to coordinate signs in {−1, 0, 1}.
func signInPlace(g []float64) {
	for i, v := range g {
		switch {
		case v > 0:
			g[i] = 1
		case v < 0:
			g[i] = -1
		default:
			g[i] = 0
		}
	}
}

// equalBits compares vectors by IEEE-754 bit patterns, matching the
// exact-vote equality semantics.
func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
