// Package cluster implements the synchronous parameter-server training
// protocol of Algorithm 1: per round, the PS samples a batch, partitions
// it into files according to the assignment graph, workers compute file
// gradient sums in parallel (Byzantine workers substitute crafted
// vectors), the PS majority-votes each file's replicas (Eq. 3), applies
// a robust aggregation rule to the vote winners, and updates the model
// with momentum SGD.
//
// The engine is a steady-state machine: a persistent worker goroutine
// pool executes the compute, vote, and (for coordinate-wise rules)
// aggregation phases, and a preallocated gradient arena is reused across
// rounds, so the hot path performs no gradient-sized allocation (see
// DESIGN.md "Performance architecture"). The serial engine
// (Parallelism = 1) and the pooled engine produce bit-identical
// parameter trajectories for a fixed seed. The redundant computation
// cost of replication is real, not simulated, and the communication
// phase can be physically measured by encoding and decoding every
// worker→PS message through the compact binary gradient-frame codec of
// internal/transport, so the Figure 12
// computation/communication/aggregation split is observed, not modelled.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
	"byzshield/internal/transport"
	"byzshield/internal/vote"
)

// ErrClosed is returned by StepOnce after Close.
var ErrClosed = errors.New("cluster: engine closed")

// Config assembles one training experiment.
type Config struct {
	Assignment *assign.Assignment
	Model      model.Model
	Train      *data.Dataset
	Test       *data.Dataset
	BatchSize  int
	// Attack crafts Byzantine payloads; Benign{} for attack-free runs.
	Attack attack.Attack
	// Byzantines lists the corrupted worker ids (chosen worst-case by
	// the caller, typically via distort.WorstCaseByzantines).
	Byzantines []int
	// Aggregator is applied to the vote winners (or directly to worker
	// gradients when the assignment has r = 1).
	Aggregator aggregate.Aggregator
	Schedule   trainer.Schedule
	Momentum   float64
	Seed       int64
	// SignMessages makes workers transmit coordinate signs instead of
	// gradient values (the signSGD pipeline). The aggregated sign vector
	// is applied directly (scaled only by the learning rate).
	SignMessages bool
	// VoteTolerance > 0 switches the vote to L∞ clustering mode.
	VoteTolerance float64
	// MeasureComm enables real binary serialization of worker messages
	// so the communication phase is physically measured.
	MeasureComm bool
	// Parallelism is the width of the engine's persistent goroutine
	// pool: 0 selects GOMAXPROCS, 1 runs every phase serially on the
	// calling goroutine. Any width produces bit-identical parameter
	// trajectories for a fixed seed.
	Parallelism int
}

// PhaseTimes accumulates wall-clock time per protocol phase, plus the
// exact number of serialized worker→PS bytes (deterministic, unlike the
// wall-clock figures).
type PhaseTimes struct {
	Compute       time.Duration
	Communication time.Duration
	Aggregation   time.Duration
	CommBytes     int64
}

// Add accumulates other into t.
func (t *PhaseTimes) Add(other PhaseTimes) {
	t.Compute += other.Compute
	t.Communication += other.Communication
	t.Aggregation += other.Aggregation
	t.CommBytes += other.CommBytes
}

// RoundStats reports one protocol round.
type RoundStats struct {
	Iteration      int
	LR             float64
	DistortedFiles int // files whose vote the Byzantines won this round
	Times          PhaseTimes
}

// Engine executes the protocol.
type Engine struct {
	cfg         Config
	params      []float64
	opt         *trainer.SGD
	sampler     *data.BatchSampler
	byzSet      map[int]bool
	honest      []int // sorted non-Byzantine worker ids
	corruptible []int // files with ≥ r' Byzantine replicas (static per run)
	iter        int
	times       PhaseTimes
	pool        *pool // nil when Parallelism == 1
	width       int   // pool width (1 when serial)
	arena       *roundArena
	closeOnce   sync.Once
	closed      bool
}

// New validates the configuration and initializes the engine, including
// its gradient arena and worker pool. Callers that create many engines
// should Close each one to release the pool goroutines.
func New(cfg Config) (*Engine, error) {
	if cfg.Assignment == nil || cfg.Model == nil || cfg.Train == nil || cfg.Test == nil {
		return nil, fmt.Errorf("cluster: assignment, model, train and test are required")
	}
	if err := cfg.Assignment.Validate(); err != nil {
		return nil, err
	}
	if cfg.Aggregator == nil {
		return nil, fmt.Errorf("cluster: aggregator is required")
	}
	if cfg.Attack == nil {
		cfg.Attack = attack.Benign{}
	}
	if cfg.BatchSize < cfg.Assignment.F {
		return nil, fmt.Errorf("cluster: batch size %d smaller than file count %d", cfg.BatchSize, cfg.Assignment.F)
	}
	if err := cfg.Train.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: train set: %w", err)
	}
	if err := cfg.Test.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: test set: %w", err)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("cluster: parallelism %d < 0", cfg.Parallelism)
	}
	byzSet := make(map[int]bool, len(cfg.Byzantines))
	for _, u := range cfg.Byzantines {
		if u < 0 || u >= cfg.Assignment.K {
			return nil, fmt.Errorf("cluster: byzantine worker %d out of range [0,%d)", u, cfg.Assignment.K)
		}
		if byzSet[u] {
			return nil, fmt.Errorf("cluster: byzantine worker %d listed twice", u)
		}
		byzSet[u] = true
	}
	sampler, err := data.NewBatchSampler(cfg.Train.Len(), cfg.BatchSize, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opt, err := trainer.NewSGD(cfg.Schedule, cfg.Momentum, cfg.Model.NumParams())
	if err != nil {
		return nil, err
	}
	width := cfg.Parallelism
	if width == 0 {
		width = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:     cfg,
		params:  model.InitParams(cfg.Model, cfg.Seed),
		opt:     opt,
		sampler: sampler,
		byzSet:  byzSet,
		width:   width,
	}
	for u := 0; u < cfg.Assignment.K; u++ {
		if !byzSet[u] {
			e.honest = append(e.honest, u)
		}
	}
	e.corruptible = e.computeCorruptible()
	e.arena = newRoundArena(cfg.Assignment, cfg.Model.NumParams(), byzSet, cfg.MeasureComm, width)
	if width > 1 {
		e.pool = newPool(width)
	}
	return e, nil
}

// Close releases the engine's worker pool goroutines. The engine must
// not be stepped concurrently with Close; StepOnce afterwards returns
// ErrClosed. Close is idempotent.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.closed = true
		if e.pool != nil {
			e.pool.close()
		}
	})
	return nil
}

// runPhase executes fn(worker, task) for task in [0, n): inline on the
// calling goroutine for the serial engine, across the persistent pool
// otherwise. Tasks must be independent, which is also what makes the two
// execution modes bit-identical.
func (e *Engine) runPhase(n int, fn func(worker, task int)) {
	if e.pool == nil {
		for t := 0; t < n; t++ {
			fn(0, t)
		}
		return
	}
	e.pool.run(n, fn)
}

// computeCorruptible returns the files with at least r' Byzantine
// replicas under the configured Byzantine set.
func (e *Engine) computeCorruptible() []int {
	a := e.cfg.Assignment
	rp := a.R/2 + 1
	var out []int
	for v := 0; v < a.F; v++ {
		c := 0
		for _, u := range a.FileWorkers(v) {
			if e.byzSet[u] {
				c++
			}
		}
		if c >= rp {
			out = append(out, v)
		}
	}
	return out
}

// CorruptibleFiles returns the files whose votes the Byzantines control.
func (e *Engine) CorruptibleFiles() []int {
	return append([]int(nil), e.corruptible...)
}

// DistortionFraction returns ε̂ = |corruptible| / f for this run.
func (e *Engine) DistortionFraction() float64 {
	return float64(len(e.corruptible)) / float64(e.cfg.Assignment.F)
}

// Params returns the current model parameters (a copy).
func (e *Engine) Params() []float64 {
	out := make([]float64, len(e.params))
	copy(out, e.params)
	return out
}

// Times returns accumulated per-phase wall-clock times.
func (e *Engine) Times() PhaseTimes { return e.times }

// Iteration returns the next iteration index to execute.
func (e *Engine) Iteration() int { return e.iter }

// Snapshot captures the restartable training state (parameters,
// momentum, iteration) for checkpointing.
func (e *Engine) Snapshot() (params, velocity []float64, iteration int) {
	return e.Params(), e.opt.Velocity(), e.iter
}

// Restore resumes from a snapshot taken by Snapshot. Dimensions must
// match the engine's model. The batch sampler is rebuilt from the
// engine's seed and fast-forwarded to the snapshot iteration, so a
// restore into a freshly constructed engine continues the exact sample
// stream of the interrupted run — no round replay is needed.
func (e *Engine) Restore(params, velocity []float64, iteration int) error {
	if len(params) != len(e.params) {
		return fmt.Errorf("cluster: restore params length %d, want %d", len(params), len(e.params))
	}
	if iteration < 0 {
		return fmt.Errorf("cluster: restore iteration %d < 0", iteration)
	}
	if len(velocity) > 0 {
		if err := e.opt.SetVelocity(velocity); err != nil {
			return err
		}
	}
	sampler, err := data.NewBatchSampler(e.cfg.Train.Len(), e.cfg.BatchSize, e.cfg.Seed)
	if err != nil {
		return err
	}
	for t := 0; t < iteration; t++ {
		sampler.Next()
	}
	e.sampler = sampler
	copy(e.params, params)
	e.iter = iteration
	return nil
}

// CheckFeasible verifies that the configured aggregator's Byzantine
// preconditions hold for this run's operand count and worst-case
// corruption — the applicability constraints the paper runs into
// ("Bulyan cannot be paired with DETOX for q ≥ 1 ...").
func (e *Engine) CheckFeasible() error {
	ba, ok := e.cfg.Aggregator.(aggregate.ByzAware)
	if !ok {
		return nil
	}
	n := e.cfg.Assignment.F // operands after voting
	c := len(e.corruptible)
	return ba.Feasible(n, c)
}

// RunRound executes one protocol round and returns its statistics.
func (e *Engine) RunRound() (RoundStats, error) {
	return e.StepOnce(context.Background())
}

// StepOnce executes one protocol round under the given context.
// Cancellation is checked at the round boundary — a canceled context
// returns before any state (sampler, optimizer, iteration counter)
// mutates, so the engine always sits exactly between rounds and can be
// resumed or checkpointed after a cancellation.
func (e *Engine) StepOnce(ctx context.Context) (RoundStats, error) {
	if err := ctx.Err(); err != nil {
		return RoundStats{}, err
	}
	if e.closed {
		return RoundStats{}, ErrClosed
	}
	a := e.cfg.Assignment
	m := e.cfg.Model
	ar := e.arena

	batch := e.sampler.Next()
	files, err := data.PartitionFiles(batch, a.F)
	if err != nil {
		return RoundStats{}, err
	}

	// --- Compute phase: honest workers compute file gradient sums
	// across the persistent pool. Redundancy is physically executed:
	// every honest worker computes every file it is assigned, into its
	// arena buffers.
	computeStart := time.Now()
	e.runPhase(len(e.honest), func(_, t int) {
		u := e.honest[t]
		for j, v := range ar.workerFiles[u] {
			g := ar.grads[u][j]
			clear(g)
			m.SumGradient(e.params, e.cfg.Train, files[v], g)
			// Repoint the PS's view at the fresh compute buffer (a
			// measured-communication round leaves it on the rx side).
			ar.cur[u][j] = g
		}
	})
	computeTime := time.Since(computeStart)

	// --- Attack oracle: true gradients for every file (reusing honest
	// workers' results; computing any file held only by Byzantines).
	for v := 0; v < a.F; v++ {
		ar.trueGrads[v] = nil
		for _, ref := range ar.fileReplicas[v] {
			if !e.byzSet[ref.worker] {
				ar.trueGrads[v] = ar.grads[ref.worker][ref.slot]
				break
			}
		}
		if ar.trueGrads[v] == nil {
			g := ar.oracle[v]
			clear(g)
			m.SumGradient(e.params, e.cfg.Train, files[v], g)
			ar.trueGrads[v] = g
		}
	}

	// Byzantine payloads. ALIE-style attacks are crafted from the
	// worker-level view (n = K workers, m = q Byzantines), matching the
	// paper's attack model: the adversary estimates moments across the
	// worker population, not the post-vote operand population. Files are
	// crafted in ascending order so runs are deterministic even for
	// attacks that draw from the round Rng per file.
	if len(ar.byzWorkers) > 0 {
		atkCtx := &attack.Context{
			Round:             e.iter,
			Dim:               ar.dim,
			FileGradients:     ar.trueGrads,
			CorruptibleFiles:  e.corruptible,
			Participants:      a.K,
			ExpectedCorrupted: len(e.byzSet),
			FileSize:          float64(e.cfg.BatchSize) / float64(a.F),
			Rng:               rand.New(rand.NewSource(e.cfg.Seed + int64(e.iter)*7919)),
		}
		craft := e.cfg.Attack.BeginRound(atkCtx)
		for _, v := range ar.byzFiles {
			ar.crafted[v] = craft(v, ar.trueGrads[v])
		}
		for _, u := range ar.byzWorkers {
			for j, v := range ar.workerFiles[u] {
				ar.cur[u][j] = ar.crafted[v]
			}
		}
	}

	// Optional sign compression (signSGD pipeline), in place: honest
	// buffers once per (worker, slot), crafted payloads once per file
	// (signing is idempotent, so payload sharing across replicas is
	// safe).
	if e.cfg.SignMessages {
		for _, u := range e.honest {
			for _, g := range ar.grads[u] {
				signInPlace(g)
			}
		}
		for _, v := range ar.byzFiles {
			signInPlace(ar.crafted[v])
		}
	}

	// --- Communication phase: move every worker's message to the PS
	// through the binary gradient-frame codec. Encoding and decoding are
	// physically executed; the decoded receive buffers become the PS's
	// working set, exactly as bytes off a wire would.
	commStart := time.Now()
	var commBytes int64
	if e.cfg.MeasureComm {
		for u := 0; u < a.K; u++ {
			buf, err := transport.AppendGradFrame(ar.encBuf[:0], u, ar.workerFiles[u], ar.cur[u])
			if err != nil {
				return RoundStats{}, fmt.Errorf("cluster: worker %d message: %w", u, err)
			}
			ar.encBuf = buf
			ar.rxFrame.Grads = ar.rx[u]
			if _, err := transport.DecodeGradFrame(buf, &ar.rxFrame); err != nil {
				return RoundStats{}, fmt.Errorf("cluster: worker %d message: %w", u, err)
			}
			// DecodeGradFrame fills the rx buffers in place (capacities
			// always suffice); repoint the PS's view at them.
			copy(ar.cur[u], ar.rx[u])
			commBytes += int64(len(buf))
		}
	}
	commTime := time.Since(commStart)

	// --- Aggregation phase: per-file majority votes sharded across the
	// pool, then the robust aggregation rule over the winners
	// (coordinate-wise rules reduce in parallel chunks).
	aggStart := time.Now()
	for w := 0; w < e.width; w++ {
		ar.distorted[w] = 0
		ar.voteErrs[w] = nil
	}
	e.runPhase(a.F, func(w, v int) {
		repl := ar.replicas[w][:0]
		for _, ref := range ar.fileReplicas[v] {
			repl = append(repl, ar.cur[ref.worker][ref.slot])
		}
		var res vote.Result
		var vErr error
		switch {
		case a.R == 1:
			res = vote.Result{Winner: repl[0], Count: 1, Unanimous: true}
		case e.cfg.VoteTolerance > 0:
			res, vErr = vote.MajorityWithTolerance(repl, e.cfg.VoteTolerance)
		default:
			res, vErr = vote.Majority(repl)
		}
		if vErr != nil {
			if ar.voteErrs[w] == nil {
				ar.voteErrs[w] = fmt.Errorf("cluster: vote on file %d: %w", v, vErr)
			}
			return
		}
		ar.winners[v] = res.Winner
		if !e.cfg.SignMessages && !equalBits(res.Winner, ar.trueGrads[v]) {
			ar.distorted[w]++
		}
	})
	distorted := 0
	for w := 0; w < e.width; w++ {
		if ar.voteErrs[w] != nil {
			return RoundStats{}, ar.voteErrs[w]
		}
		distorted += ar.distorted[w]
	}
	if err := e.aggregate(ar.winners); err != nil {
		return RoundStats{}, fmt.Errorf("cluster: aggregation: %w", err)
	}
	if !e.cfg.SignMessages {
		// Winners are gradient sums over ~batch/f samples; normalize to
		// per-sample scale for the update (Algorithm 1, line 17).
		scale := float64(a.F) / float64(e.cfg.BatchSize)
		for i := range ar.update {
			ar.update[i] *= scale
		}
	}
	aggTime := time.Since(aggStart)

	lr := e.cfg.Schedule.At(e.iter)
	e.opt.Step(e.params, ar.update, e.iter)

	stats := RoundStats{
		Iteration:      e.iter,
		LR:             lr,
		DistortedFiles: distorted,
		Times: PhaseTimes{
			Compute:       computeTime,
			Communication: commTime,
			Aggregation:   aggTime,
			CommBytes:     commBytes,
		},
	}
	e.times.Add(stats.Times)
	e.iter++
	return stats, nil
}

// aggregate reduces the vote winners into the arena's update vector.
// Coordinate-wise rules (aggregate.ChunkAggregator) reduce in parallel
// chunks across the pool — bit-identical to a serial pass because every
// coordinate is reduced independently; other rules run their ordinary
// Aggregate.
func (e *Engine) aggregate(winners [][]float64) error {
	ca, ok := e.cfg.Aggregator.(aggregate.ChunkAggregator)
	if !ok || e.pool == nil {
		if ok {
			return ca.AggregateChunk(winners, e.arena.update, 0, e.arena.dim)
		}
		update, err := e.cfg.Aggregator.Aggregate(winners)
		if err != nil {
			return err
		}
		copy(e.arena.update, update)
		return nil
	}
	dim := e.arena.dim
	chunks := e.width
	if chunks > dim {
		chunks = dim
	}
	per := (dim + chunks - 1) / chunks
	errs := e.arena.voteErrs
	for w := 0; w < e.width; w++ {
		errs[w] = nil
	}
	e.runPhase(chunks, func(w, c int) {
		lo := c * per
		hi := lo + per
		if hi > dim {
			hi = dim
		}
		if lo >= hi {
			return
		}
		if err := ca.AggregateChunk(winners, e.arena.update, lo, hi); err != nil && errs[w] == nil {
			errs[w] = err
		}
	})
	for w := 0; w < e.width; w++ {
		if errs[w] != nil {
			return errs[w]
		}
	}
	return nil
}

// Run executes iterations rounds under ctx, evaluating test accuracy
// (and batch loss on a held-out probe) every evalEvery rounds plus at
// the end. The returned history contains one point per evaluation; on
// cancellation the partial history recorded so far is returned together
// with the context error.
func (e *Engine) Run(ctx context.Context, iterations, evalEvery int) (*trainer.History, error) {
	var h trainer.History
	if iterations < 1 {
		return &h, fmt.Errorf("cluster: iterations %d < 1", iterations)
	}
	if evalEvery < 1 {
		evalEvery = 1
	}
	for t := 0; t < iterations; t++ {
		if _, err := e.StepOnce(ctx); err != nil {
			return &h, err
		}
		if (t+1)%evalEvery == 0 || t == iterations-1 {
			h.Add(t+1, e.EvalLoss(), e.Evaluate())
		}
	}
	return &h, nil
}

// Evaluate returns the current test accuracy.
func (e *Engine) Evaluate() float64 {
	return model.Accuracy(e.cfg.Model, e.params, e.cfg.Test)
}

// EvalLoss returns the current training loss on the deterministic probe
// subset used for history reporting.
func (e *Engine) EvalLoss() float64 {
	return e.cfg.Model.Loss(e.params, e.cfg.Train, e.probeIndices())
}

// probeIndices returns a fixed subset of the training set used for loss
// reporting (cheap and deterministic), cached in the arena.
func (e *Engine) probeIndices() []int {
	if e.arena.probe != nil {
		return e.arena.probe
	}
	n := e.cfg.Train.Len()
	size := 256
	if size > n {
		size = n
	}
	idx := make([]int, size)
	stride := n / size
	if stride < 1 {
		stride = 1
	}
	for i := range idx {
		idx[i] = (i * stride) % n
	}
	e.arena.probe = idx
	return idx
}

// signInPlace maps a vector to coordinate signs in {−1, 0, 1}.
func signInPlace(g []float64) {
	for i, v := range g {
		switch {
		case v > 0:
			g[i] = 1
		case v < 0:
			g[i] = -1
		default:
			g[i] = 0
		}
	}
}

// equalBits compares vectors by IEEE-754 bit patterns, matching the
// exact-vote equality semantics.
func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
