package cluster

import (
	"math"
	"testing"

	"byzshield/internal/aggregate"
	"byzshield/internal/attack"
)

// TestSnapshotRestoreResumesIdentically: running 10 rounds straight must
// produce bit-identical parameters to running 5, snapshotting, restoring
// into a fresh engine, and running 5 more — the invariant that makes
// checkpointed experiments trustworthy. Restore rebuilds the batch
// sampler from the seed and fast-forwards it to the snapshot iteration,
// so the fresh engine needs no round replay before restoring.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	build := func() *Engine {
		cfg := testSetup(t, []int{1, 6}, attack.ALIE{}, aggregate.Median{})
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	// Uninterrupted run: 10 rounds.
	ref := build()
	for i := 0; i < 10; i++ {
		if _, err := ref.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Params()

	// Interrupted run: 5 rounds, snapshot, "restart", restore, 5 more.
	first := build()
	for i := 0; i < 5; i++ {
		if _, err := first.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	params, velocity, iter := first.Snapshot()
	if iter != 5 {
		t.Fatalf("snapshot iteration %d, want 5", iter)
	}

	second := build()
	// No replay: Restore fast-forwards the sampler stream internally.
	if err := second.Restore(params, velocity, iter); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := second.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	got := second.Params()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("resumed run diverged at param %d: %v vs %v", i, want[i], got[i])
		}
	}
	if second.Iteration() != 10 {
		t.Errorf("iteration = %d, want 10", second.Iteration())
	}
}

func TestRestoreValidation(t *testing.T) {
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore([]float64{1}, nil, 0); err == nil {
		t.Error("wrong params length accepted")
	}
	params, _, _ := e.Snapshot()
	if err := e.Restore(params, []float64{1}, 0); err == nil {
		t.Error("wrong velocity length accepted")
	}
	if err := e.Restore(params, nil, -1); err == nil {
		t.Error("negative iteration accepted")
	}
	if err := e.Restore(params, nil, 3); err != nil {
		t.Errorf("valid restore rejected: %v", err)
	}
	if e.Iteration() != 3 {
		t.Errorf("iteration = %d", e.Iteration())
	}
}
