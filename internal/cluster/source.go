package cluster

import (
	"context"
	"fmt"
	"slices"
	"time"

	"byzshield/internal/attack"
	"byzshield/internal/wire"
)

// CollectStats reports the measurable cost of one gradient collection:
// the compute and communication wall-clock split plus the exact number
// of serialized worker→PS bytes (when the source physically moves
// bytes).
type CollectStats struct {
	Compute       time.Duration
	Communication time.Duration
	// ReportBytes counts serialized worker→PS report bytes as they
	// moved (compressed uplink frames); ReportRawBytes what the same
	// reports would have cost raw. See PhaseTimes.
	ReportBytes    int64
	ReportRawBytes int64
	// BroadcastBytes counts serialized PS→worker parameter-broadcast
	// bytes for sources that physically move (or measure) them.
	BroadcastBytes int64
	// Broadcast is the wall-clock time of the PS→worker parameter
	// broadcast sends (network sources only; a subset of
	// Communication). The tracer records it as its own phase span.
	Broadcast time.Duration
	// Rejoins/Evictions/StaleFrames report connection-lifecycle events
	// of network sources (see RoundStats).
	Rejoins     int
	Evictions   int
	StaleFrames int
}

// GradientSource supplies one round's per-worker gradient replicas to
// the engine — the single seam between the shared round core (vote,
// quorum, robust aggregation, momentum step) and the two ways gradients
// come into existence: computed in process by the engine's own worker
// pool (the default source) or received over the network by the TCP
// parameter server (internal/transport).
//
// Collect must, for every worker u, either fill all of u's slot buffers
// for this round (Round.Deliver for each assigned file slot, or by
// writing into Round.Buffer) or declare the worker absent with
// Round.MarkMissing. Partially delivered workers would vote stale
// buffers from an earlier round. Collect owns the round's compute and
// communication phases; the engine times everything after it (vote +
// aggregation) itself.
type GradientSource interface {
	Collect(ctx context.Context, rd *Round) (CollectStats, error)
}

// RoundPreparer is the optional pipelining seam a GradientSource may
// implement: when the engine runs with PrepareAhead, it calls
// PrepareNext with round iteration's file→sample partition before
// round iteration-1's collection opens, so a network source can encode
// the next round's sample lists once and piggyback them on the current
// round's own broadcast instead of paying a separate write per worker.
// fileSamples is engine-owned and valid until the round with that
// iteration completes; implementations must not retain it past their
// own encode.
type RoundPreparer interface {
	PrepareNext(iteration int, fileSamples [][]int)
}

// Round is the engine's view of one in-flight protocol round, handed to
// the GradientSource: the iteration number, the current parameters, the
// file→sample partition, and the preallocated arena buffers gradients
// land in. Methods that address per-worker state (Buffer, Deliver,
// MarkMissing) are safe to call concurrently for distinct workers,
// which is how network sources collect from all workers in parallel.
type Round struct {
	eng   *Engine
	files [][]int
}

// Iteration returns the 0-based round index.
func (rd *Round) Iteration() int { return rd.eng.iter }

// Params returns the current model parameters. The slice is the
// engine's live parameter vector: read (or serialize) it, never write.
func (rd *Round) Params() []float64 { return rd.eng.params }

// Workers returns the cluster size K.
func (rd *Round) Workers() int { return rd.eng.cfg.Assignment.K }

// WorkerFiles returns worker u's assigned file ids in slot order
// (ascending). The slice is shared: do not modify.
func (rd *Round) WorkerFiles(u int) []int { return rd.eng.arena.workerFiles[u] }

// FileSamples returns the training-sample indices of file v this round.
func (rd *Round) FileSamples(v int) []int { return rd.files[v] }

// Buffer returns the engine-owned gradient buffer for worker u's slot-th
// assigned file. Sources may decode or compute directly into it; doing
// so counts as delivering the slot.
func (rd *Round) Buffer(u, slot int) []float64 { return rd.eng.arena.grads[u][slot] }

// GradBuffer is Round.Buffer addressed from the engine: the buffers
// are stable for the engine's lifetime, so a network source's
// long-lived reader goroutines may cache and decode into them between
// Collect calls — under the same contract as Buffer (only the worker's
// current-round deliverer may write a buffer the round might read).
func (e *Engine) GradBuffer(u, slot int) []float64 { return e.arena.grads[u][slot] }

// Deliver points the engine at g as worker u's gradient for its slot-th
// assigned file this round. g must have the model dimension and stay
// untouched until the round completes; sources that reuse receive
// buffers per (worker, slot) satisfy this automatically.
func (rd *Round) Deliver(u, slot int, g []float64) error {
	ar := rd.eng.arena
	if len(g) != ar.dim {
		return fmt.Errorf("cluster: deliver worker %d slot %d: dim %d, want %d", u, slot, len(g), ar.dim)
	}
	ar.cur[u][slot] = g
	return nil
}

// MarkMissing declares worker u absent this round: its replicas are
// excluded from every file vote, and the quorum rule decides whether
// affected files degrade or drop.
func (rd *Round) MarkMissing(u int) { rd.eng.arena.missing[u] = true }

// Shards returns the number of aggregation shards the engine's plane
// splits the parameter vector into (1 when sharding is off). Sources
// that stream per-shard report frames derive the coordinate split from
// wire.ShardRange with this count.
func (rd *Round) Shards() int {
	if rd.eng.plane == nil {
		return 1
	}
	return rd.eng.plane.n
}

// VoteShardEarly runs shard s's per-file range votes now, against the
// current missing set — the early-aggregation seam: a source calls this
// from its collecting goroutine the moment every live worker's shard-s
// frame has been delivered, so the shard votes while other shards still
// collect. The engine revalidates the participation snapshot when
// collection closes and silently recomputes the shard if workers went
// missing after the early vote, so a mistimed call costs only the
// wasted early work. No-op without a sharded plane.
func (rd *Round) VoteShardEarly(s int) { rd.eng.voteShardEarly(s) }

// localSource is the default GradientSource: the in-process cluster of
// Algorithm 1. Honest workers compute their file gradient sums across
// the engine's persistent pool, Byzantine workers substitute crafted
// payloads from the attack oracle, the optional fault model removes
// workers from the round, and measured-communication mode pushes every
// surviving message through the binary gradient-frame codec.
type localSource struct {
	e *Engine
}

// Collect implements GradientSource.
func (s localSource) Collect(_ context.Context, rd *Round) (CollectStats, error) {
	e := s.e
	a := e.cfg.Assignment
	m := e.cfg.Model
	ar := e.arena
	files := rd.files

	// Fault plan: remove skipped and crashed workers before any compute
	// happens. Pure delays are a wire-transport phenomenon; in process
	// they are full participation. Crashes are remembered separately
	// under measured communication: a crashed worker receives no
	// parameter broadcast, a merely skipping one still does.
	if e.cfg.Fault != nil {
		for u := 0; u < a.K; u++ {
			d := e.cfg.Fault.Plan(e.iter, u)
			if d.Skip || d.Crash {
				ar.missing[u] = true
			}
			if ar.crashed != nil {
				ar.crashed[u] = d.Crash
			}
		}
	}

	// --- Compute phase: surviving honest workers compute file gradient
	// sums across the persistent pool. Redundancy is physically
	// executed: every worker computes every file it is assigned, into
	// its arena buffers.
	computeStart := time.Now()
	e.runPhase(len(e.honest), func(_, t int) {
		u := e.honest[t]
		if ar.missing[u] {
			return
		}
		for j, v := range ar.workerFiles[u] {
			g := ar.grads[u][j]
			clear(g)
			m.SumGradient(e.params, e.cfg.Train, files[v], g)
			// Repoint the PS's view at the fresh compute buffer (a
			// measured-communication round leaves it on the rx side).
			ar.cur[u][j] = g
		}
	})
	computeTime := time.Since(computeStart)

	// --- Attack oracle: true gradients for every file (reusing live
	// honest workers' results; computing any file whose live replicas
	// are all Byzantine or missing).
	for v := 0; v < a.F; v++ {
		ar.trueGrads[v] = nil
		for _, ref := range ar.fileReplicas[v] {
			if e.byzSet[ref.worker] || ar.missing[ref.worker] {
				continue
			}
			ar.trueGrads[v] = ar.grads[ref.worker][ref.slot]
			break
		}
		if ar.trueGrads[v] == nil {
			g := ar.oracle[v]
			clear(g)
			m.SumGradient(e.params, e.cfg.Train, files[v], g)
			ar.trueGrads[v] = g
		}
	}

	// Byzantine payloads. ALIE-style attacks are crafted from the
	// worker-level view (n = K workers, m = q Byzantines), matching the
	// paper's attack model: the adversary estimates moments across the
	// worker population, not the post-vote operand population. Files are
	// crafted in ascending order so runs are deterministic even for
	// attacks that draw from the round Rng per file — and regardless of
	// which workers a fault removed.
	if len(ar.byzWorkers) > 0 {
		// The rng is reseeded rather than reallocated: Seed resets the
		// source and the normal-draw cache, so the stream is identical
		// to a freshly constructed rand.New per round.
		e.atkRng.Seed(e.cfg.Seed + int64(e.iter)*7919)
		e.atkCtx = attack.Context{
			Round:             e.iter,
			Dim:               ar.dim,
			FileGradients:     ar.trueGrads,
			CorruptibleFiles:  e.corruptible,
			Participants:      a.K,
			ExpectedCorrupted: len(e.byzSet),
			FileSize:          float64(e.cfg.BatchSize) / float64(a.F),
			Rng:               e.atkRng,
		}
		craft, err := attack.BeginWith(e.cfg.Attack, &e.atkCtx, &e.atkScr, &e.atkCoord)
		if err != nil {
			return CollectStats{}, fmt.Errorf("cluster: attack coordinator: %w", err)
		}
		for _, v := range ar.byzFiles {
			ar.crafted[v] = craft(v, ar.trueGrads[v])
		}
		for _, u := range ar.byzWorkers {
			if ar.missing[u] {
				continue
			}
			for j, v := range ar.workerFiles[u] {
				ar.cur[u][j] = ar.crafted[v]
			}
		}
	}

	// Optional sign compression (signSGD pipeline), in place: honest
	// buffers once per (worker, slot), crafted payloads once per file
	// (signing is idempotent, so payload sharing across replicas is
	// safe).
	if e.cfg.SignMessages {
		for _, u := range e.honest {
			if ar.missing[u] {
				continue
			}
			for _, g := range ar.grads[u] {
				signInPlace(g)
			}
		}
		for _, v := range ar.byzFiles {
			signInPlace(ar.crafted[v])
		}
	}

	// Lossy uplink tier, in place: apply the wire codec's exact
	// quantize→dequantize float operations to every surviving message
	// before any vote reads it, so the in-process trajectory is
	// bit-identical to a TCP run on the same tier. Unlike signInPlace,
	// quantization is NOT idempotent in floating point (re-encoding a
	// quantized row lands on different bits), so every distinct buffer
	// passes exactly once: honest buffers are per-(worker, slot), but
	// coordinated attacks may share one payload buffer across files,
	// hence the seen-pointer dedupe. Sharing stays consistent with the
	// wire because replicas quantizing identical input bits produce
	// identical output bits. Skipped under measured communication, where
	// the physical codec round-trip performs the same operations.
	if tier := e.cfg.UplinkTier; tier.Lossy() && !e.cfg.MeasureComm {
		for _, u := range e.honest {
			if ar.missing[u] {
				continue
			}
			for _, g := range ar.grads[u] {
				e.quantizeUplink(g)
			}
		}
		seen := ar.quantSeen[:0]
		for _, v := range ar.byzFiles {
			g := ar.crafted[v]
			if len(g) == 0 || slices.Contains(seen, &g[0]) {
				continue
			}
			seen = append(seen, &g[0])
			e.quantizeUplink(g)
		}
		ar.quantSeen = seen
	}

	// --- Communication phase: move every surviving worker's message to
	// the PS through the uplink gradient codec — per-worker encoder and
	// decoder state, exactly as each TCP connection pair holds it, so
	// the codec's raw-vs-delta self-selection is physically exercised
	// and the realized ratio is measured, not modelled. The decoded
	// receive buffers become the PS's working set, as bytes off a wire
	// would.
	commStart := time.Now()
	var commBytes, rawBytes, bcastBytes int64
	if e.cfg.MeasureComm {
		var err error
		if bcastBytes, err = s.measureBroadcast(); err != nil {
			return CollectStats{}, err
		}
		for u := 0; u < a.K; u++ {
			if ar.missing[u] {
				// No report: encoder and decoder bases both stay put, so
				// the pair stays in lockstep across the gap.
				continue
			}
			if pl := e.plane; pl != nil && e.cfg.UplinkTier.Lossy() {
				// A sharded wire worker frames each shard range as its own
				// report — lossy rows carry per-(file, shard) scale
				// parameters — so the measured round-trip must quantize at
				// the same granularity for the trajectory to stay
				// bit-identical to the unmeasured engine and the wire.
				rows := ar.cur[u]
				for sh := 0; sh < pl.n; sh++ {
					lo, hi := pl.ranges[sh][0], pl.ranges[sh][1]
					for j := range rows {
						ar.txRows[j] = rows[j][lo:hi]
						ar.rxRows[j] = ar.rx[u][j][lo:hi:hi]
					}
					buf, _, rawSize, err := ar.upEnc[u].Encode(ar.encBuf[:0], u, ar.workerFiles[u], ar.txRows[:len(rows)])
					if err != nil {
						return CollectStats{}, fmt.Errorf("cluster: worker %d message: %w", u, err)
					}
					ar.encBuf = buf
					ar.rxFrame.Grads = ar.rxRows[:len(rows)]
					if _, _, err := ar.upDec[u].Decode(buf, &ar.rxFrame); err != nil {
						return CollectStats{}, fmt.Errorf("cluster: worker %d message: %w", u, err)
					}
					commBytes += int64(len(buf))
					rawBytes += int64(rawSize)
				}
				copy(ar.cur[u], ar.rx[u])
				continue
			}
			buf, _, rawSize, err := ar.upEnc[u].Encode(ar.encBuf[:0], u, ar.workerFiles[u], ar.cur[u])
			if err != nil {
				return CollectStats{}, fmt.Errorf("cluster: worker %d message: %w", u, err)
			}
			ar.encBuf = buf
			ar.rxFrame.Grads = ar.rx[u]
			if _, _, err := ar.upDec[u].Decode(buf, &ar.rxFrame); err != nil {
				return CollectStats{}, fmt.Errorf("cluster: worker %d message: %w", u, err)
			}
			// Decode fills the rx buffers in place (capacities always
			// suffice); repoint the PS's view at them.
			copy(ar.cur[u], ar.rx[u])
			commBytes += int64(len(buf))
			rawBytes += int64(rawSize)
		}
	}
	commTime := time.Since(commStart)

	return CollectStats{
		Compute:        computeTime,
		Communication:  commTime,
		ReportBytes:    commBytes,
		ReportRawBytes: rawBytes,
		BroadcastBytes: bcastBytes,
	}, nil
}

// measureBroadcast physically serializes this round's PS→worker
// parameter broadcast and returns its total byte count, applying the
// same bandwidth policy as the TCP server: a full frame on round 0, on
// every BroadcastFullEvery-th round, and to any worker that did not
// acknowledge the previous broadcast; an XOR delta frame against the
// previous round's vector otherwise. Each distinct frame is decoded
// once into the arena's scratch vector, so the broadcast round-trip is
// executed, not modelled. It also rolls the per-worker acknowledgement
// state forward for the next round.
func (s localSource) measureBroadcast() (int64, error) {
	e := s.e
	a := e.cfg.Assignment
	ar := e.arena
	every := e.cfg.BroadcastFullEvery
	refresh := e.iter == 0 || every <= 0 || e.iter%every == 0

	var fullFrame, deltaFrame []byte
	var total int64
	buf := ar.bcastBuf[:0]
	for u := 0; u < a.K; u++ {
		if ar.crashed[u] {
			continue // evicted: the PS no longer sends to it
		}
		full := refresh || !ar.prevAck[u]
		var err error
		switch {
		case full && fullFrame == nil:
			mark := len(buf)
			if buf, err = wire.AppendParamsFull(buf, e.params); err != nil {
				return 0, fmt.Errorf("cluster: broadcast: %w", err)
			}
			fullFrame = buf[mark:]
			if _, _, err := wire.DecodeParams(fullFrame, ar.bcastScratch); err != nil {
				return 0, fmt.Errorf("cluster: broadcast decode: %w", err)
			}
		case !full && deltaFrame == nil:
			mark := len(buf)
			if buf, err = wire.AppendParamsDelta(buf, ar.prevParams, e.params); err != nil {
				return 0, fmt.Errorf("cluster: broadcast: %w", err)
			}
			deltaFrame = buf[mark:]
			copy(ar.bcastScratch, ar.prevParams)
			if _, _, err := wire.DecodeParams(deltaFrame, ar.bcastScratch); err != nil {
				return 0, fmt.Errorf("cluster: broadcast decode: %w", err)
			}
		}
		if full {
			total += int64(len(fullFrame))
		} else {
			total += int64(len(deltaFrame))
		}
	}
	ar.bcastBuf = buf
	copy(ar.prevParams, e.params)
	for u := 0; u < a.K; u++ {
		ar.prevAck[u] = !ar.crashed[u]
	}
	return total, nil
}
