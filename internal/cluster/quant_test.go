package cluster

import (
	"context"
	"math"
	"testing"

	"byzshield/internal/aggregate"
	"byzshield/internal/attack"
	"byzshield/internal/distort"
	"byzshield/internal/wire"
)

// runParams runs cfg for the given number of rounds and returns a copy
// of the final parameters.
func runParams(t *testing.T, cfg Config, rounds int) []float64 {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < rounds; i++ {
		if _, err := e.RunRound(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	out := make([]float64, len(e.Params()))
	copy(out, e.Params())
	return out
}

func paramsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestUplinkTierValidation pins the config seams: an undefined tier is
// rejected, and the lossy tiers are mutually exclusive with the
// signSGD pipeline (sign compression of already-quantized values would
// silently discard the tier's scale information).
func TestUplinkTierValidation(t *testing.T) {
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	bad := cfg
	bad.UplinkTier = wire.UplinkTier(9)
	if _, err := New(bad); err == nil {
		t.Error("undefined uplink tier accepted")
	}
	bad = cfg
	bad.UplinkTier = wire.TierInt8
	bad.SignMessages = true
	if _, err := New(bad); err == nil {
		t.Error("lossy uplink tier + SignMessages accepted")
	}
}

// TestLossyUplinkDeterministicAndLossy: a lossy-tier run is exactly
// reproducible (two identical runs land on the same bits — the
// quantizer has no entropy source), the lossless tiers are bit-exact
// no-ops in the engine, and the lossy tiers actually move the
// trajectory off the lossless bits.
func TestLossyUplinkDeterministicAndLossy(t *testing.T) {
	const rounds = 8
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	base := runParams(t, cfg, rounds)

	for _, tier := range []wire.UplinkTier{wire.TierRaw, wire.TierDelta} {
		c := cfg
		c.UplinkTier = tier
		if !paramsEqual(runParams(t, c, rounds), base) {
			t.Errorf("lossless tier %s changed the engine trajectory", tier)
		}
	}
	for _, tier := range []wire.UplinkTier{wire.TierSign, wire.TierInt8} {
		c := cfg
		c.UplinkTier = tier
		p1 := runParams(t, c, rounds)
		p2 := runParams(t, c, rounds)
		if !paramsEqual(p1, p2) {
			t.Errorf("tier %s: two identical runs diverged", tier)
		}
		if paramsEqual(p1, base) {
			t.Errorf("tier %s landed on the lossless bits — quantization never ran", tier)
		}
	}
}

// TestLossyUplinkMeasureCommBitIdentical: the measured-communication
// path physically round-trips every report through the wire codec, so
// for a lossy tier it must reproduce the in-place quantization of the
// unmeasured engine bit for bit — including under a sharded plane,
// where quantization (and therefore framing) happens per shard range.
func TestLossyUplinkMeasureCommBitIdentical(t *testing.T) {
	const rounds = 6
	byz := []int{2, 7}
	for _, tier := range []wire.UplinkTier{wire.TierSign, wire.TierInt8} {
		for _, shards := range []int{0, 3} {
			cfg := testSetup(t, byz, attack.ALIE{}, aggregate.Median{})
			cfg.UplinkTier = tier
			cfg.Shards = shards
			plain := runParams(t, cfg, rounds)
			cfg.MeasureComm = true
			measured := runParams(t, cfg, rounds)
			if !paramsEqual(plain, measured) {
				t.Errorf("tier %s shards %d: measured-communication trajectory diverged from the in-place quantization",
					tier, shards)
			}
		}
	}
}

// TestLossyUplinkShardGranularity: the quantization granularity is the
// aggregation shard range — a sharded worker frames each shard with
// its own scale parameters — so a sharded lossy engine must NOT land
// on the unsharded lossy engine's bits. (Lossless tiers are
// shard-invariant; the lossy tiers are deliberately not.)
func TestLossyUplinkShardGranularity(t *testing.T) {
	const rounds = 6
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	cfg.UplinkTier = wire.TierInt8
	unsharded := runParams(t, cfg, rounds)
	cfg.Shards = 3
	sharded := runParams(t, cfg, rounds)
	if paramsEqual(unsharded, sharded) {
		t.Error("sharded int8 trajectory matches unsharded — per-shard scale parameters had no effect")
	}
}

// TestLossyUplinkConvergenceParity runs the attack × aggregator matrix
// on both lossy tiers and requires convergence parity with the
// lossless baseline: the quantized run's final accuracy must stay
// within a fixed tolerance of the delta-tier run under the same attack
// and defense. This is the acceptance gate for shipping the lossy
// tiers — they trade gradient precision for uplink bytes, not
// robustness.
func TestLossyUplinkConvergenceParity(t *testing.T) {
	const (
		rounds = 50
		tol    = 0.10
	)
	an := distort.NewAnalyzer(mustMOLS(t))
	byz := an.WorstCaseByzantines(context.Background(), 3)
	attacks := []struct {
		name string
		byz  []int
		atk  attack.Attack
	}{
		{"benign", nil, attack.Benign{}},
		{"reversed", byz, attack.Reversed{C: 10}},
		{"alie", byz, attack.ALIE{}},
	}
	aggs := []struct {
		name string
		agg  aggregate.Aggregator
	}{
		{"median", aggregate.Median{}},
		{"multikrum", aggregate.MultiKrum{C: 8}},
	}
	run := func(atk attack.Attack, byz []int, agg aggregate.Aggregator, tier wire.UplinkTier) float64 {
		cfg := testSetup(t, byz, atk, agg)
		cfg.UplinkTier = tier
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		h, err := e.Run(context.Background(), rounds, rounds)
		if err != nil {
			t.Fatal(err)
		}
		return h.FinalAccuracy()
	}
	for _, av := range attacks {
		for _, gv := range aggs {
			base := run(av.atk, av.byz, gv.agg, wire.TierDelta)
			for _, tier := range []wire.UplinkTier{wire.TierSign, wire.TierInt8} {
				acc := run(av.atk, av.byz, gv.agg, tier)
				t.Logf("%s/%s: %s acc %.3f vs lossless %.3f", av.name, gv.name, tier, acc, base)
				if acc < base-tol {
					t.Errorf("%s/%s: tier %s accuracy %.3f vs lossless %.3f — outside parity tolerance %.2f",
						av.name, gv.name, tier, acc, base, tol)
				}
			}
		}
	}
}
