package cluster

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
	"byzshield/internal/vote"
	"byzshield/internal/wire"
)

// Config32 assembles one reduced-precision training experiment. The
// float32 tier runs the same synchronous protocol round as Config —
// batch → file partition → redundant compute → bit-exact per-file
// majority vote under the quorum rule → chunked robust aggregation →
// momentum SGD — with every gradient, parameter, and optimizer value at
// float32 width. It is the engine behind protocol v7's negotiated f32
// connections and the dimension-scaling benchmarks.
//
// The tier is deliberately narrower than the f64 config: the adversary
// research knobs (Attack, Byzantines, SignMessages, VoteTolerance,
// MeasureComm, Fault, Detector) stay f64-only. What the tier keeps is
// everything that shapes the numeric trajectory and the performance
// envelope: the worker pool, the sharded chunk ranges, the quorum rule,
// non-IID distributions, prepare-ahead pipelining, and the lossy uplink
// tiers (quantization at wire granularity, so an in-process lossy run
// is bit-identical to a TCP run on the same tier).
type Config32 struct {
	Assignment *assign.Assignment
	Model      model.Model32
	// Train and Test are the float64 source datasets; the engine narrows
	// them once at construction (data.Dataset.To32), so both precision
	// tiers of one experiment load data a single time.
	Train     *data.Dataset
	Test      *data.Dataset
	BatchSize int
	// Distribution is the optional non-IID sampler split (see
	// Config.Distribution); pools are drawn on the f64 set and index
	// into the narrowed copy identically.
	Distribution data.Distributor
	// Aggregator reduces the vote winners coordinate-wise at f32 width.
	Aggregator aggregate.ChunkAggregator32
	Schedule   trainer.Schedule
	Momentum   float64
	Seed       int64
	// UplinkTier mirrors Config.UplinkTier at f32: a lossy tier applies
	// the f32 wire codec's exact quantize→dequantize operations to every
	// collected gradient, per aggregation-shard coordinate range.
	// Mutually exclusive with Source.
	UplinkTier wire.UplinkTier
	// Parallelism is the pool width (see Config.Parallelism); any width
	// is bit-identical.
	Parallelism int
	// Shards splits the parameter vector into wire.ShardRange coordinate
	// ranges for aggregation and the optimizer step; any count is
	// bit-identical to serial (coordinate-wise operations only).
	Shards int
	// PrepareAhead draws round t+1's batch before round t's collection
	// opens (see Config.PrepareAhead).
	PrepareAhead bool
	// Quorum is the minimum surviving replicas per file vote (see
	// Config.Quorum); 0 selects R/2 + 1.
	Quorum int
	// Source overrides gradient collection (the f32 TCP parameter
	// server); nil selects the in-process compute source.
	Source GradientSource32
}

// GradientSource32 is the float32 tier's collection seam, under the
// exact contract of GradientSource.
type GradientSource32 interface {
	Collect(ctx context.Context, rd *Round32) (CollectStats, error)
}

// Round32 is the engine's view of one in-flight f32 round, mirroring
// Round method for method.
type Round32 struct {
	eng   *Engine32
	files [][]int
}

// Iteration returns the 0-based round index.
func (rd *Round32) Iteration() int { return rd.eng.iter }

// Params returns the live float32 parameter vector: read only.
func (rd *Round32) Params() []float32 { return rd.eng.params }

// Workers returns the cluster size K.
func (rd *Round32) Workers() int { return rd.eng.cfg.Assignment.K }

// WorkerFiles returns worker u's assigned file ids in slot order.
func (rd *Round32) WorkerFiles(u int) []int { return rd.eng.workerFiles[u] }

// FileSamples returns the training-sample indices of file v this round.
func (rd *Round32) FileSamples(v int) []int { return rd.files[v] }

// Buffer returns the engine-owned f32 gradient buffer for worker u's
// slot-th assigned file; decoding into it counts as delivering.
func (rd *Round32) Buffer(u, slot int) []float32 { return rd.eng.grads[u][slot] }

// GradBuffer32 is Round32.Buffer addressed from the engine, for network
// sources whose reader goroutines decode between Collect calls.
func (e *Engine32) GradBuffer32(u, slot int) []float32 { return e.grads[u][slot] }

// Deliver points the engine at g as worker u's slot-th gradient.
func (rd *Round32) Deliver(u, slot int, g []float32) error {
	if len(g) != rd.eng.dim {
		return fmt.Errorf("cluster: deliver worker %d slot %d: dim %d, want %d", u, slot, len(g), rd.eng.dim)
	}
	rd.eng.cur[u][slot] = g
	return nil
}

// MarkMissing declares worker u absent this round.
func (rd *Round32) MarkMissing(u int) { rd.eng.missing[u] = true }

// Shards returns the number of aggregation shard ranges (1 when
// sharding is off).
func (rd *Round32) Shards() int { return len(rd.eng.ranges) }

// Engine32 executes the protocol at float32 width.
type Engine32 struct {
	cfg     Config32
	src     GradientSource32
	params  []float32
	opt     *trainer.SGD32
	sampler batchSource
	train32 *data.Dataset32
	test32  *data.Dataset32
	quorum  int
	iter    int
	dim     int
	times   PhaseTimes
	pool    *pool
	width   int
	// ranges are the aggregation shard coordinate ranges ([lo, hi) per
	// shard; a single full-dimension range when sharding is off).
	ranges [][2]int
	rd     Round32

	// Per-round state, preallocated once (the f32 mirror of roundArena,
	// without the adversary planes).
	workerFiles  [][]int
	grads        [][][]float32
	cur          [][][]float32
	fileReplicas [][]slotRef
	winners      [][]float32
	live         [][]float32
	missing      []bool
	update       []float32
	replicas     [][][]float32
	degraded     []int
	dropped      []int
	voteErrs     []error
	aggErrs      []error
	files        [][]int

	// Prepare-ahead state (see the Engine fields of the same names).
	pendingFiles [][]int
	spareFiles   [][]int
	prepBatch    [2][]int
	prepFlip     int
	preparedIter int
	prepErr      error

	closeOnce sync.Once
	closed    bool
}

// New32 validates the configuration and initializes the f32 engine.
func New32(cfg Config32) (*Engine32, error) {
	if cfg.Assignment == nil || cfg.Model == nil || cfg.Train == nil || cfg.Test == nil {
		return nil, fmt.Errorf("cluster: assignment, model, train and test are required")
	}
	if err := cfg.Assignment.Validate(); err != nil {
		return nil, err
	}
	if cfg.Aggregator == nil {
		return nil, fmt.Errorf("cluster: aggregator is required")
	}
	if !cfg.UplinkTier.Valid() {
		return nil, fmt.Errorf("cluster: unknown uplink tier %d", cfg.UplinkTier)
	}
	if cfg.Source != nil && cfg.UplinkTier != wire.TierDelta {
		return nil, fmt.Errorf("cluster: UplinkTier is an in-process source knob; it must be unset when Source is provided")
	}
	if cfg.BatchSize < cfg.Assignment.F {
		return nil, fmt.Errorf("cluster: batch size %d smaller than file count %d", cfg.BatchSize, cfg.Assignment.F)
	}
	if err := cfg.Train.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: train set: %w", err)
	}
	if err := cfg.Test.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: test set: %w", err)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("cluster: parallelism %d < 0", cfg.Parallelism)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: shards %d < 0", cfg.Shards)
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = cfg.Assignment.R/2 + 1
	}
	if quorum < 1 || quorum > cfg.Assignment.R {
		return nil, fmt.Errorf("cluster: quorum %d outside [1,%d]", cfg.Quorum, cfg.Assignment.R)
	}
	// The f32 batch stream is the f64 stream: same sampler type, same
	// seed, drawn in strict round order — the two tiers of one
	// experiment see identical sample indices every round.
	f64cfg := Config{
		Train:        cfg.Train,
		BatchSize:    cfg.BatchSize,
		Seed:         cfg.Seed,
		Distribution: cfg.Distribution,
		Assignment:   cfg.Assignment,
	}
	sampler, err := newBatchSource(&f64cfg)
	if err != nil {
		return nil, err
	}
	opt, err := trainer.NewSGD32(cfg.Schedule, cfg.Momentum, cfg.Model.NumParams())
	if err != nil {
		return nil, err
	}
	width := cfg.Parallelism
	if width == 0 {
		width = runtime.GOMAXPROCS(0)
	}
	a := cfg.Assignment
	dim := cfg.Model.NumParams()
	e := &Engine32{
		cfg:          cfg,
		params:       model.InitParams32(cfg.Model, cfg.Seed),
		opt:          opt,
		sampler:      sampler,
		train32:      cfg.Train.To32(),
		test32:       cfg.Test.To32(),
		quorum:       quorum,
		dim:          dim,
		width:        width,
		preparedIter: -1,
	}
	e.workerFiles = make([][]int, a.K)
	totalSlots := 0
	for u := 0; u < a.K; u++ {
		e.workerFiles[u] = a.WorkerFiles(u)
		totalSlots += len(e.workerFiles[u])
	}
	backing := make([]float32, totalSlots*dim)
	e.grads = make([][][]float32, a.K)
	e.cur = make([][][]float32, a.K)
	off := 0
	for u := 0; u < a.K; u++ {
		n := len(e.workerFiles[u])
		e.grads[u] = make([][]float32, n)
		e.cur[u] = make([][]float32, n)
		for j := 0; j < n; j++ {
			e.grads[u][j] = backing[off : off+dim : off+dim]
			off += dim
		}
	}
	e.fileReplicas = make([][]slotRef, a.F)
	for u := 0; u < a.K; u++ {
		for j, v := range e.workerFiles[u] {
			e.fileReplicas[v] = append(e.fileReplicas[v], slotRef{worker: u, slot: j})
		}
	}
	e.winners = make([][]float32, a.F)
	e.live = make([][]float32, 0, a.F)
	e.missing = make([]bool, a.K)
	e.update = make([]float32, dim)
	e.replicas = make([][][]float32, width)
	for w := range e.replicas {
		e.replicas[w] = make([][]float32, 0, a.R)
	}
	e.degraded = make([]int, width)
	e.dropped = make([]int, width)
	e.voteErrs = make([]error, width)
	e.files = make([][]int, a.F)
	n := wire.ShardCount(cfg.Shards, dim)
	e.ranges = make([][2]int, n)
	for s := 0; s < n; s++ {
		lo, hi := wire.ShardRange(dim, n, s)
		e.ranges[s] = [2]int{lo, hi}
	}
	e.aggErrs = make([]error, max(n, width))
	e.rd = Round32{eng: e}
	if width > 1 {
		e.pool = newPool(width)
	}
	e.src = cfg.Source
	if e.src == nil {
		e.src = localSource32{e: e}
	}
	return e, nil
}

// Close releases the pool goroutines; StepOnce afterwards returns
// ErrClosed. Idempotent.
func (e *Engine32) Close() error {
	e.closeOnce.Do(func() {
		e.closed = true
		if e.pool != nil {
			e.pool.close()
		}
	})
	return nil
}

// runPhase mirrors Engine.runPhase.
func (e *Engine32) runPhase(n int, fn func(worker, task int)) {
	if e.pool == nil {
		for t := 0; t < n; t++ {
			fn(0, t)
		}
		return
	}
	e.pool.run(n, fn)
}

// Params returns the current float32 parameters (a copy).
func (e *Engine32) Params() []float32 {
	out := make([]float32, len(e.params))
	copy(out, e.params)
	return out
}

// Times returns accumulated per-phase wall-clock times.
func (e *Engine32) Times() PhaseTimes { return e.times }

// Iteration returns the next iteration index to execute.
func (e *Engine32) Iteration() int { return e.iter }

// StepOnce executes one f32 protocol round under the cancellation
// contract of Engine.StepOnce.
func (e *Engine32) StepOnce(ctx context.Context) (RoundStats, error) {
	if err := ctx.Err(); err != nil {
		return RoundStats{}, err
	}
	if e.closed {
		return RoundStats{}, ErrClosed
	}
	if err := e.prepErr; err != nil {
		e.prepErr = nil
		return RoundStats{}, err
	}
	a := e.cfg.Assignment

	var files [][]int
	if e.pendingFiles != nil {
		files = e.pendingFiles
		e.pendingFiles = nil
		e.spareFiles, e.files = e.files, files
	} else {
		batch := e.sampler.Next()
		if e.cfg.PrepareAhead {
			batch = e.copyBatch(batch)
		}
		f, err := data.PartitionFilesInto(batch, a.F, e.files)
		if err != nil {
			return RoundStats{}, err
		}
		files = f
	}
	e.files = files

	clear(e.missing)
	e.rd.files = files
	e.prepareNext()

	cs, err := e.src.Collect(ctx, &e.rd)
	if err != nil {
		return RoundStats{}, err
	}

	// --- Aggregation phase: per-file majority votes over the surviving
	// replicas under the quorum rule, then the chunked robust rule over
	// the winners along the shard ranges.
	aggStart := time.Now()
	for w := 0; w < e.width; w++ {
		e.degraded[w] = 0
		e.dropped[w] = 0
		e.voteErrs[w] = nil
	}
	e.runPhase(a.F, e.voteFile)
	degraded, dropped := 0, 0
	for w := 0; w < e.width; w++ {
		if e.voteErrs[w] != nil {
			return RoundStats{}, e.voteErrs[w]
		}
		degraded += e.degraded[w]
		dropped += e.dropped[w]
	}
	live := e.live[:0]
	for v := 0; v < a.F; v++ {
		if e.winners[v] != nil {
			live = append(live, e.winners[v])
		}
	}
	e.live = live
	if len(live) == 0 {
		return RoundStats{}, fmt.Errorf("cluster: round %d: no file met the survivor quorum %d", e.iter, e.quorum)
	}
	// Feasibility under shrinkage, as in the f64 engine: a round whose
	// dropped files push a Byzantine-aware rule below its floor degrades
	// to coordinate-wise median instead of erroring.
	agg := e.cfg.Aggregator
	aggDegraded := false
	if ba, ok := agg.(aggregate.ByzAware); ok && len(live) < a.F {
		if ba.Feasible(len(live), 0) != nil && ba.Feasible(a.F, 0) == nil {
			agg = aggregate.Median{}
			aggDegraded = true
		}
	}
	if err := e.aggregate(agg, live); err != nil {
		return RoundStats{}, fmt.Errorf("cluster: aggregation: %w", err)
	}
	// Winners are gradient sums over ~batch/f samples; normalize to
	// per-sample scale, narrowed once so every coordinate sees the same
	// f32 multiplier.
	scale := float32(data.PerSampleScale(a.F, e.cfg.BatchSize))
	e.runPhase(len(e.ranges), func(_, s int) {
		for i := e.ranges[s][0]; i < e.ranges[s][1]; i++ {
			e.update[i] *= scale
		}
	})
	aggTime := time.Since(aggStart)

	lr := e.cfg.Schedule.At(e.iter)
	e.runPhase(len(e.ranges), func(_, s int) {
		e.opt.StepChunk(e.params, e.update, e.iter, e.ranges[s][0], e.ranges[s][1])
	})

	var missing []int
	for u := 0; u < a.K; u++ {
		if e.missing[u] {
			missing = append(missing, u)
		}
	}
	stats := RoundStats{
		Iteration:          e.iter,
		LR:                 lr,
		MissingWorkers:     missing,
		DegradedFiles:      degraded,
		DroppedFiles:       dropped,
		AggregatorDegraded: aggDegraded,
		Rejoins:            cs.Rejoins,
		Evictions:          cs.Evictions,
		StaleFrames:        cs.StaleFrames,
		MeanReputation:     1,
		Times: PhaseTimes{
			Compute:        cs.Compute,
			Communication:  cs.Communication,
			Aggregation:    aggTime,
			ReportBytes:    cs.ReportBytes,
			ReportRawBytes: cs.ReportRawBytes,
			BroadcastBytes: cs.BroadcastBytes,
		},
	}
	e.times.Add(stats.Times)
	e.iter++
	return stats, nil
}

// voteFile runs file v's majority vote with width-w scratch.
func (e *Engine32) voteFile(w, v int) {
	repl := e.replicas[w][:0]
	for _, ref := range e.fileReplicas[v] {
		if e.missing[ref.worker] {
			continue
		}
		repl = append(repl, e.cur[ref.worker][ref.slot])
	}
	e.replicas[w] = repl[:0]
	if len(repl) < e.quorum {
		e.winners[v] = nil
		e.dropped[w]++
		return
	}
	degradedVote := len(repl) < len(e.fileReplicas[v])
	var res vote.Result32
	var vErr error
	if len(repl) == 1 {
		res = vote.Result32{Winner: repl[0], Count: 1, Unanimous: true}
	} else {
		res, vErr = vote.Majority32(repl)
	}
	if vErr != nil {
		if e.voteErrs[w] == nil {
			e.voteErrs[w] = fmt.Errorf("cluster: vote on file %d: %w", v, vErr)
		}
		return
	}
	if degradedVote {
		if res.Tied {
			// A tied degraded vote is indistinguishable from an
			// attacker-controlled one; drop the file (see Engine.voteFile).
			e.winners[v] = nil
			e.dropped[w]++
			return
		}
		e.degraded[w]++
	}
	e.winners[v] = res.Winner
}

// aggregate reduces the winners into the update vector along the shard
// ranges (bit-identical to serial: every rule is coordinate-wise).
func (e *Engine32) aggregate(agg aggregate.ChunkAggregator32, winners [][]float32) error {
	n := len(e.ranges)
	for s := 0; s < n; s++ {
		e.aggErrs[s] = nil
	}
	e.runPhase(n, func(_, s int) {
		e.aggErrs[s] = agg.AggregateChunk32(winners, e.update, e.ranges[s][0], e.ranges[s][1])
	})
	for s := 0; s < n; s++ {
		if e.aggErrs[s] != nil {
			return e.aggErrs[s]
		}
	}
	return nil
}

// prepareNext mirrors Engine.prepareNext.
func (e *Engine32) prepareNext() {
	if !e.cfg.PrepareAhead || e.prepErr != nil || e.pendingFiles != nil {
		return
	}
	batch := e.copyBatch(e.sampler.Next())
	files, err := data.PartitionFilesInto(batch, e.cfg.Assignment.F, e.spareFiles)
	if err != nil {
		e.prepErr = err
		return
	}
	e.spareFiles = nil
	e.pendingFiles = files
	e.preparedIter = e.iter + 1
	if p, ok := e.src.(RoundPreparer); ok {
		p.PrepareNext(e.preparedIter, files)
	}
}

// copyBatch mirrors Engine.copyBatch.
func (e *Engine32) copyBatch(batch []int) []int {
	b := &e.prepBatch[e.prepFlip]
	e.prepFlip ^= 1
	*b = append((*b)[:0], batch...)
	return *b
}

// quantizeUplink applies the configured lossy f32 tier's exact
// quantize→dequantize operations per shard range (the wire's framing
// granularity); see Engine.quantizeUplink for why.
func (e *Engine32) quantizeUplink(g []float32) {
	quant := wire.SignQuantizeInPlace32
	if e.cfg.UplinkTier == wire.TierInt8 {
		quant = wire.Int8QuantizeInPlace32
	}
	for _, r := range e.ranges {
		quant(g[r[0]:r[1]])
	}
}

// Run executes iterations rounds, evaluating every evalEvery rounds
// plus at the end, under the contract of Engine.Run.
func (e *Engine32) Run(ctx context.Context, iterations, evalEvery int) (*trainer.History, error) {
	var h trainer.History
	if iterations < 1 {
		return &h, fmt.Errorf("cluster: iterations %d < 1", iterations)
	}
	if evalEvery < 1 {
		evalEvery = 1
	}
	for t := 0; t < iterations; t++ {
		if _, err := e.StepOnce(ctx); err != nil {
			return &h, err
		}
		if (t+1)%evalEvery == 0 || t == iterations-1 {
			h.Add(t+1, e.EvalLoss(), e.Evaluate())
		}
	}
	return &h, nil
}

// Evaluate returns the current test accuracy of the f32 parameters.
func (e *Engine32) Evaluate() float64 {
	return model.Accuracy32(e.cfg.Model, e.params, e.test32)
}

// EvalLoss returns the current training loss on the deterministic
// probe subset.
func (e *Engine32) EvalLoss() float64 {
	return e.cfg.Model.Loss32(e.params, e.train32, data.ProbeIndices(e.train32.Len()))
}

// localSource32 is the default f32 GradientSource32: every worker
// computes its file gradient sums in process across the engine's pool
// (the f32 tier has no adversary plane — all workers are honest).
type localSource32 struct {
	e *Engine32
}

// Collect implements GradientSource32.
func (s localSource32) Collect(_ context.Context, rd *Round32) (CollectStats, error) {
	e := s.e
	a := e.cfg.Assignment
	m := e.cfg.Model
	files := rd.files

	computeStart := time.Now()
	e.runPhase(a.K, func(_, u int) {
		for j, v := range e.workerFiles[u] {
			g := e.grads[u][j]
			clear(g)
			m.SumGradient32(e.params, e.train32, files[v], g)
			e.cur[u][j] = g
		}
	})
	// Lossy uplink tier, in place (see localSource.Collect): every
	// buffer is per-(worker, slot), so a single pass over all buffers
	// applies the codec operations exactly once each.
	if e.cfg.UplinkTier.Lossy() {
		e.runPhase(a.K, func(_, u int) {
			for _, g := range e.grads[u] {
				e.quantizeUplink(g)
			}
		})
	}
	return CollectStats{Compute: time.Since(computeStart)}, nil
}

// equalBits32 compares float32 vectors by bit patterns (the f32
// counterpart of equalBits, used by the bit-identity tests).
func equalBits32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
