//go:build !race

package cluster

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
