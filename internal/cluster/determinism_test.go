package cluster

import (
	"math"
	"testing"

	"byzshield/internal/aggregate"
	"byzshield/internal/attack"
	"byzshield/internal/registry"
)

// aggParams gives every registry aggregator knobs that are valid for the
// 25 post-vote operands of MOLS(5,3).
var aggParams = map[string]registry.AggregatorParams{
	"krum":         {C: 2},
	"multikrum":    {C: 2},
	"bulyan":       {C: 2},
	"trimmed-mean": {Trim: 2},
}

// TestSerialParallelBitIdentical is the determinism regression test of
// the engine redesign: for every registry aggregator, a serial engine
// (Parallelism = 1) and pooled engines (explicit widths plus the
// GOMAXPROCS default) must produce bit-identical parameter vectors after
// 20 rounds of the same seeded run with r = 3 replication and an active
// attack. Explicit widths 3 and 8 force the pool even on single-core
// machines, where the GOMAXPROCS default degenerates to serial.
func TestSerialParallelBitIdentical(t *testing.T) {
	reg := registry.Default
	for _, name := range reg.Aggregators() {
		t.Run(name, func(t *testing.T) {
			run := func(parallelism int) []float64 {
				agg, err := reg.Aggregator(name, aggParams[name])
				if err != nil {
					t.Fatal(err)
				}
				cfg := testSetup(t, []int{2, 7, 11}, attack.ALIE{}, agg)
				cfg.Parallelism = parallelism
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				for i := 0; i < 20; i++ {
					if _, err := e.RunRound(); err != nil {
						t.Fatalf("round %d (parallelism %d): %v", i, parallelism, err)
					}
				}
				return e.Params()
			}
			serial := run(1)
			for _, width := range []int{3, 8, 0} {
				parallel := run(width)
				if len(serial) != len(parallel) {
					t.Fatalf("param lengths differ: %d vs %d", len(serial), len(parallel))
				}
				for i := range serial {
					if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
						t.Fatalf("width %d: param %d diverged: serial %v (bits %x), parallel %v (bits %x)",
							width, i, serial[i], math.Float64bits(serial[i]),
							parallel[i], math.Float64bits(parallel[i]))
					}
				}
			}
		})
	}
}

// TestMeasureCommPreservesTrajectory asserts that the physically
// measured communication round-trip (binary codec encode/decode of every
// worker message) does not perturb training: parameters after 10 rounds
// are bit-identical with and without MeasureComm.
func TestMeasureCommPreservesTrajectory(t *testing.T) {
	run := func(measure bool) []float64 {
		cfg := testSetup(t, []int{0, 5}, attack.Reversed{C: 2}, mustAggregator(t, "median"))
		cfg.MeasureComm = measure
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 10; i++ {
			if _, err := e.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		return e.Params()
	}
	plain := run(false)
	measured := run(true)
	for i := range plain {
		if math.Float64bits(plain[i]) != math.Float64bits(measured[i]) {
			t.Fatalf("param %d diverged under MeasureComm: %v vs %v", i, plain[i], measured[i])
		}
	}
}

func mustAggregator(t *testing.T, name string) aggregate.Aggregator {
	t.Helper()
	agg, err := registry.Default.Aggregator(name, aggParams[name])
	if err != nil {
		t.Fatal(err)
	}
	return agg
}
