package cluster

import (
	"context"
	"testing"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/distort"
	"byzshield/internal/fault"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
)

// testSetup builds a small but realistic experiment: MOLS(5,3) → K=15
// workers, 25 files; softmax model on a separable synthetic dataset.
func testSetup(t testing.TB, byz []int, atk attack.Attack, agg aggregate.Aggregator) Config {
	t.Helper()
	a, err := assign.MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 600, Test: 200, Dim: 12, Classes: 10, Seed: 17, ClassSep: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmax(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Assignment: a,
		Model:      m,
		Train:      train,
		Test:       test,
		BatchSize:  100,
		Attack:     atk,
		Byzantines: byz,
		Aggregator: agg,
		Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 25},
		Momentum:   0.9,
		Seed:       5,
	}
}

func TestEngineValidation(t *testing.T) {
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	bad := cfg
	bad.Aggregator = nil
	if _, err := New(bad); err == nil {
		t.Error("nil aggregator accepted")
	}
	bad = cfg
	bad.BatchSize = 10 // < 25 files
	if _, err := New(bad); err == nil {
		t.Error("batch < files accepted")
	}
	bad = cfg
	bad.Byzantines = []int{99}
	if _, err := New(bad); err == nil {
		t.Error("out-of-range byzantine accepted")
	}
	bad = cfg
	bad.Byzantines = []int{1, 1}
	if _, err := New(bad); err == nil {
		t.Error("duplicate byzantine accepted")
	}
	bad = cfg
	bad.Model = nil
	if _, err := New(bad); err == nil {
		t.Error("nil model accepted")
	}
}

func TestCorruptibleFilesMatchDistortAnalysis(t *testing.T) {
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	an := distort.NewAnalyzer(cfg.Assignment)
	byz := an.WorstCaseByzantines(context.Background(), 5)
	cfg.Byzantines = byz
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := an.DistortedFiles(byz)
	got := e.CorruptibleFiles()
	if len(got) != len(want) {
		t.Fatalf("corruptible = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("corruptible = %v, want %v", got, want)
		}
	}
	// Table 3: q=5 → c_max=8, ε̂=0.32.
	if len(got) != 8 {
		t.Errorf("c_max(5) = %d, want 8", len(got))
	}
	if e.DistortionFraction() != 8.0/25 {
		t.Errorf("ε̂ = %v", e.DistortionFraction())
	}
}

func TestBenignTrainingConverges(t *testing.T) {
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Run(context.Background(), 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	if acc := h.FinalAccuracy(); acc < 0.6 {
		t.Errorf("benign training reached only %.2f accuracy", acc)
	}
}

func TestRoundStatsDistortionMatchesStaticAnalysis(t *testing.T) {
	an := distort.NewAnalyzer(mustMOLS(t))
	byz := an.WorstCaseByzantines(context.Background(), 3)
	cfg := testSetup(t, byz, attack.Constant{Value: 7, ScaleByFileSize: true}, aggregate.Median{})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	// Table 3: q=3 → c_max=3 distorted votes per round.
	if stats.DistortedFiles != 3 {
		t.Errorf("distorted = %d, want 3", stats.DistortedFiles)
	}
}

func mustMOLS(t testing.TB) *assign.Assignment {
	t.Helper()
	a, err := assign.MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMajorityVoteFiltersSubThresholdByzantines(t *testing.T) {
	// One Byzantine per file replica group (q=2 < r'=2 on any shared
	// file... actually q=2 can corrupt exactly 1 file per Table 3).
	an := distort.NewAnalyzer(mustMOLS(t))
	byz := an.WorstCaseByzantines(context.Background(), 2)
	cfg := testSetup(t, byz, attack.Constant{Value: 1e6}, aggregate.Median{})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DistortedFiles != 1 {
		t.Errorf("distorted = %d, want 1 (Table 3, q=2)", stats.DistortedFiles)
	}
	// Training still converges: 1/25 corrupted winners, median absorbs it.
	h, err := e.Run(context.Background(), 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalAccuracy() < 0.55 {
		t.Errorf("accuracy %.2f under q=2 constant attack", h.FinalAccuracy())
	}
}

func TestByzShieldBeatsUndefendedMeanUnderAttack(t *testing.T) {
	an := distort.NewAnalyzer(mustMOLS(t))
	byz := an.WorstCaseByzantines(context.Background(), 5)

	// Reversed gradient with C = 10: the 8 corrupted winners flip the
	// sign of the mean update entirely, while the median still sits
	// among the 17 honest winners.
	run := func(agg aggregate.Aggregator) float64 {
		cfg := testSetup(t, byz, attack.Reversed{C: 10}, agg)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := e.Run(context.Background(), 50, 50)
		if err != nil {
			t.Fatal(err)
		}
		return h.FinalAccuracy()
	}
	median := run(aggregate.Median{})
	mean := run(aggregate.Mean{})
	if median < mean+0.2 {
		t.Errorf("median accuracy %.3f should clearly beat mean %.3f under reversed-gradient attack", median, mean)
	}
	if median < 0.6 {
		t.Errorf("median accuracy %.3f too low", median)
	}
}

func TestSignMessagesPipeline(t *testing.T) {
	cfg := testSetup(t, []int{0, 5}, attack.SignFlip{}, aggregate.SignSGD{})
	cfg.SignMessages = true
	cfg.Schedule = trainer.Schedule{Base: 0.005, Decay: 0.9, Every: 20}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Run(context.Background(), 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalAccuracy() < 0.3 {
		t.Errorf("signSGD accuracy %.2f too low", h.FinalAccuracy())
	}
}

func TestMeasureCommRoundTrip(t *testing.T) {
	cfg := testSetup(t, []int{0}, attack.Reversed{}, aggregate.Median{})
	cfg.MeasureComm = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Times.Communication <= 0 {
		t.Error("communication phase not measured")
	}
	if stats.Times.Compute <= 0 || stats.Times.Aggregation <= 0 {
		t.Error("phase times missing")
	}
	total := e.Times()
	if total.Communication < stats.Times.Communication {
		t.Error("accumulated times inconsistent")
	}
}

func TestVoteToleranceMode(t *testing.T) {
	cfg := testSetup(t, []int{0, 1}, attack.Constant{Value: 3}, aggregate.Median{})
	cfg.VoteTolerance = 1e-9
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunRound(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFeasible(t *testing.T) {
	an := distort.NewAnalyzer(mustMOLS(t))
	byz := an.WorstCaseByzantines(context.Background(), 5) // c_max = 8 of 25

	cfg := testSetup(t, byz, attack.ALIE{}, aggregate.MultiKrum{C: 8})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-Krum needs 25 >= 2*8+3 = 19: feasible.
	if err := e.CheckFeasible(); err != nil {
		t.Errorf("MultiKrum(8) on 25 operands should be feasible: %v", err)
	}
	// Bulyan needs 25 >= 4*8+3 = 35: infeasible — mirrors the paper's
	// "Bulyan cannot be paired" constraint.
	cfg.Aggregator = aggregate.Bulyan{C: 8}
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.CheckFeasible(); err == nil {
		t.Error("Bulyan(8) on 25 operands should be infeasible")
	}
}

func TestBaselineAssignmentNoVote(t *testing.T) {
	// Baseline: K = f = 15, r = 1: aggregator sees raw worker gradients.
	a, err := assign.Baseline(15)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 300, Test: 100, Dim: 8, Classes: 4, Seed: 23, ClassSep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmax(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Assignment: a, Model: m, Train: train, Test: test,
		BatchSize: 60, Attack: attack.Reversed{}, Byzantines: []int{0, 1, 2},
		Aggregator: aggregate.Median{},
		Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 25},
		Momentum:   0.9, Seed: 3,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	// With r = 1 every Byzantine file is distorted: q = 3 = ε̂·K.
	if stats.DistortedFiles != 3 {
		t.Errorf("baseline distorted = %d, want 3", stats.DistortedFiles)
	}
	h, err := e.Run(context.Background(), 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalAccuracy() < 0.5 {
		t.Errorf("baseline median under weak revgrad: %.2f", h.FinalAccuracy())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		cfg := testSetup(t, []int{2, 7}, attack.ALIE{}, aggregate.Median{})
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := e.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		return e.Params()
	}
	p1 := run()
	p2 := run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("runs diverged at param %d", i)
		}
	}
}

func TestRunRejectsBadIterations(t *testing.T) {
	cfg := testSetup(t, nil, attack.Benign{}, aggregate.Median{})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), 0, 1); err == nil {
		t.Error("0 iterations accepted")
	}
}

func BenchmarkRoundByzShield(b *testing.B) {
	cfg := testSetup(b, []int{0, 5, 10}, attack.ALIE{}, aggregate.Median{})
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCrashFaultDegradesWithoutAborting: crashing one worker mid-run
// must not abort training — files it held vote degraded over the two
// surviving replicas (quorum 2 of r=3), and RoundStats reports the
// missing worker.
func TestCrashFaultDegradesWithoutAborting(t *testing.T) {
	cfg := testSetup(t, nil, nil, aggregate.Median{})
	cfg.Fault = fault.Crash{Workers: []int{4}, AtRound: 3}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for round := 0; round < 8; round++ {
		stats, err := eng.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round < 3 {
			if len(stats.MissingWorkers) != 0 || stats.DegradedFiles != 0 || stats.DroppedFiles != 0 {
				t.Fatalf("round %d: unexpected degradation before crash: %+v", round, stats)
			}
			continue
		}
		if len(stats.MissingWorkers) != 1 || stats.MissingWorkers[0] != 4 {
			t.Fatalf("round %d: missing workers %v, want [4]", round, stats.MissingWorkers)
		}
		// Worker 4 holds l = 5 files; each keeps 2 of 3 replicas, which
		// meets the default quorum, so they degrade rather than drop.
		if stats.DegradedFiles != 5 || stats.DroppedFiles != 0 {
			t.Fatalf("round %d: degraded %d dropped %d, want 5/0", round, stats.DegradedFiles, stats.DroppedFiles)
		}
	}
	if acc := eng.Evaluate(); acc < 0.5 {
		t.Errorf("degraded training accuracy %.3f < 0.5", acc)
	}
}

// TestFlakyFaultSkipsAreTransient: a flaky worker drops some rounds but
// participates in others; no round errors out.
func TestFlakyFaultSkipsAreTransient(t *testing.T) {
	cfg := testSetup(t, nil, nil, aggregate.Median{})
	cfg.Fault = fault.Flaky{Workers: []int{0, 7}, P: 0.5, Seed: 11}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	missingRounds, fullRounds := 0, 0
	for round := 0; round < 12; round++ {
		stats, err := eng.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(stats.MissingWorkers) > 0 {
			missingRounds++
		} else {
			fullRounds++
		}
	}
	if missingRounds == 0 || fullRounds == 0 {
		t.Errorf("flaky fault: %d missing rounds, %d full rounds; want both > 0", missingRounds, fullRounds)
	}
}

// TestQuorumDropsFilesBelowSurvivors: crashing all three replica
// holders of a file drops it from aggregation; training continues on
// the remaining files.
func TestQuorumDropsFilesBelowSurvivors(t *testing.T) {
	cfg := testSetup(t, nil, nil, aggregate.Median{})
	holders := cfg.Assignment.FileWorkers(0)
	cfg.Fault = fault.Crash{Workers: holders, AtRound: 0}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	stats, err := eng.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MissingWorkers) != len(holders) {
		t.Fatalf("missing %v, want the %d holders of file 0", stats.MissingWorkers, len(holders))
	}
	if stats.DroppedFiles < 1 {
		t.Errorf("dropped %d files, want ≥ 1 (file 0 lost all replicas)", stats.DroppedFiles)
	}
}

// TestFaultFreeTrajectoryUnchanged: installing a no-op fault model must
// not perturb the parameter trajectory.
func TestFaultFreeTrajectoryUnchanged(t *testing.T) {
	base := testSetup(t, nil, nil, aggregate.Median{})
	e1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	withFault := testSetup(t, nil, nil, aggregate.Median{})
	withFault.Fault = fault.None{}
	e2, err := New(withFault)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for round := 0; round < 5; round++ {
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
		if _, err := e2.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	p1, p2 := e1.Params(), e2.Params()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d diverged: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestDegradedTieDropsFileInsteadOfElectingByzantine: a file held by
// [byz, honest, honest] that loses one honest replica becomes a 1–1
// tie between the crafted payload and the honest gradient; the index
// tie-break must NOT hand the Byzantine replica the vote — the file is
// dropped for the round.
func TestDegradedTieDropsFileInsteadOfElectingByzantine(t *testing.T) {
	cfg := testSetup(t, nil, nil, aggregate.Median{})
	holders := cfg.Assignment.FileWorkers(0) // ascending worker ids
	cfg.Byzantines = []int{holders[0]}       // lowest id → wins index tie-breaks
	cfg.Attack = attack.Reversed{C: 1}
	cfg.Fault = fault.Crash{Workers: []int{holders[1]}, AtRound: 0}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	stats, err := eng.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	// File 0: survivors [crafted, honest] tie → dropped, never counted
	// as a Byzantine-won (distorted) vote. The crashed worker's other
	// l−1 files keep 2 honest survivors and degrade normally.
	if stats.DroppedFiles != 1 {
		t.Errorf("dropped %d files, want exactly the tied file 0", stats.DroppedFiles)
	}
	if stats.DistortedFiles != 0 {
		t.Errorf("distorted %d files; the tied crafted payload must not win", stats.DistortedFiles)
	}
	if want := cfg.Assignment.L - 1; stats.DegradedFiles != want {
		t.Errorf("degraded %d files, want %d", stats.DegradedFiles, want)
	}
}
