package cluster

import (
	"slices"

	"byzshield/internal/assign"
	"byzshield/internal/wire"
)

// slotRef addresses one (worker, slot) gradient buffer: worker u's
// slot-th assigned file.
type slotRef struct{ worker, slot int }

// roundArena owns every buffer the round loop touches, preallocated once
// at engine construction and reused across rounds so the steady-state
// hot path performs no gradient-sized allocation. All gradient buffers
// are views into flat backing arrays, which also keeps them cache-dense.
type roundArena struct {
	dim int
	// workerFiles[u] caches assignment.WorkerFiles(u).
	workerFiles [][]int
	// grads[u][j] is worker u's compute buffer for its j-th assigned
	// file (views into one flat backing array).
	grads [][][]float64
	// cur[u][j] is the gradient the PS sees for (u, j) this round:
	// worker u's own compute buffer for honest workers, the crafted
	// payload for Byzantine workers, or the decoded receive buffer when
	// communication measurement is on.
	cur [][][]float64
	// rx[u][j] is the decode-side buffer of the measured communication
	// round-trip (allocated only when MeasureComm is set).
	rx [][][]float64
	// fileReplicas[v] lists the (worker, slot) pairs holding file v, in
	// assignment FileWorkers order.
	fileReplicas [][]slotRef
	// trueGrads[v] points at the true (honest) gradient of file v this
	// round — the attack oracle's view.
	trueGrads [][]float64
	// oracle[v] is a compute buffer for the files all of whose replicas
	// are Byzantine (nil elsewhere); static per run because the
	// Byzantine set is.
	oracle [][]float64
	// byzWorkers is the sorted Byzantine worker list; byzFiles the
	// sorted union of their files. Both fix the payload-crafting order,
	// making rounds deterministic regardless of map iteration.
	byzWorkers []int
	byzFiles   []int
	// crafted[v] is the Byzantine payload elected for file v this round
	// (only indices in byzFiles are written).
	crafted [][]float64
	// winners[v] is file v's vote winner this round (nil when the file
	// was dropped for lack of quorum).
	winners [][]float64
	// live is the compacted winner list handed to the aggregator —
	// identical to winners on full-participation rounds.
	live [][]float64
	// missing[u] marks worker u as not participating this round
	// (crashed, skipped, or past deadline); reset at every round start.
	missing []bool
	// update is the aggregated model update.
	update []float64
	// replicas[w] is pool-goroutine w's replica gather scratch (cap R);
	// replWorkers[w] the matching replica-owner worker ids (consumed by
	// the reputation-weighted tie-break).
	replicas    [][][]float64
	replWorkers [][]int
	// distorted[w], degraded[w], dropped[w], and voteErrs[w] accumulate
	// pool-goroutine w's distorted-vote / degraded-vote / dropped-file
	// counts and first vote error; summed/joined after the phase barrier.
	distorted []int
	degraded  []int
	dropped   []int
	voteErrs  []error
	// probe caches the deterministic loss-evaluation indices.
	probe []int
	// files is the reusable batch→file partition table (the per-file
	// slices are views into the sampler's batch buffer).
	files [][]int
	// encBuf and rxFrame are the communication round-trip scratch;
	// upEnc[u]/upDec[u] are worker u's uplink codec stream state —
	// exactly the state each TCP connection pair holds, so measured
	// communication exercises the same raw-vs-delta self-selection
	// (allocated only when MeasureComm is set).
	encBuf  []byte
	rxFrame wire.GradFrame
	upEnc   []wire.UplinkEncoder
	upDec   []wire.UplinkDecoder
	// txRows/rxRows are the per-shard row-view scratch of the measured
	// lossy-uplink round-trip (sized to the widest worker's slot count,
	// allocated only when MeasureComm is set).
	txRows [][]float64
	rxRows [][]float64
	// quantSeen dedupes shared Byzantine payload buffers inside the
	// lossy quantize-in-place pass (quantization is not idempotent, so
	// each distinct buffer must pass exactly once). Grows on first use.
	quantSeen []*float64
	// Broadcast-measurement state (allocated only under MeasureComm):
	// prevParams is the parameter vector broadcast last round (the delta
	// base), prevAck[u] whether worker u acknowledged it (participated
	// or explicitly skipped — anything but a crash), crashed[u] whether
	// the fault model removed u permanently this round, bcastBuf the
	// frame encode scratch, and bcastScratch the decode-side vector that
	// makes the broadcast round-trip physically executed.
	prevParams   []float64
	prevAck      []bool
	crashed      []bool
	bcastBuf     []byte
	bcastScratch []float64
}

// newRoundArena preallocates every per-round buffer for the given
// assignment, model dimension, Byzantine set, and pool width.
// fullOracle forces a true-gradient buffer for every file: required
// when worker faults are injected, because any file's live honest
// replicas can then vanish mid-run, leaving the attack oracle (and the
// distorted-vote count) without a borrowed honest buffer to point at.
func newRoundArena(a *assign.Assignment, dim int, byzSet map[int]bool, measureComm, fullOracle bool, poolWidth int) *roundArena {
	ar := &roundArena{dim: dim}
	ar.workerFiles = make([][]int, a.K)
	totalSlots := 0
	for u := 0; u < a.K; u++ {
		ar.workerFiles[u] = a.WorkerFiles(u)
		totalSlots += len(ar.workerFiles[u])
	}
	backing := make([]float64, totalSlots*dim)
	carve := func() []float64 {
		b := backing[:dim:dim]
		backing = backing[dim:]
		return b
	}
	ar.grads = make([][][]float64, a.K)
	ar.cur = make([][][]float64, a.K)
	for u := 0; u < a.K; u++ {
		n := len(ar.workerFiles[u])
		ar.grads[u] = make([][]float64, n)
		ar.cur[u] = make([][]float64, n)
		for j := 0; j < n; j++ {
			ar.grads[u][j] = carve()
			if !byzSet[u] {
				// Honest workers always report their own buffer; the
				// pointer only changes under measured communication.
				ar.cur[u][j] = ar.grads[u][j]
			}
		}
	}
	if measureComm {
		rxBacking := make([]float64, totalSlots*dim)
		ar.rx = make([][][]float64, a.K)
		for u := 0; u < a.K; u++ {
			n := len(ar.workerFiles[u])
			ar.rx[u] = make([][]float64, n)
			for j := 0; j < n; j++ {
				ar.rx[u][j] = rxBacking[:dim:dim]
				rxBacking = rxBacking[dim:]
			}
		}
		ar.prevParams = make([]float64, dim)
		ar.prevAck = make([]bool, a.K)
		ar.crashed = make([]bool, a.K)
		ar.bcastScratch = make([]float64, dim)
		ar.upEnc = make([]wire.UplinkEncoder, a.K)
		ar.upDec = make([]wire.UplinkDecoder, a.K)
		maxSlots := 0
		for u := 0; u < a.K; u++ {
			if n := len(ar.workerFiles[u]); n > maxSlots {
				maxSlots = n
			}
		}
		ar.txRows = make([][]float64, maxSlots)
		ar.rxRows = make([][]float64, maxSlots)
	}
	ar.files = make([][]int, a.F)

	ar.fileReplicas = make([][]slotRef, a.F)
	slotOf := make([]map[int]int, a.K)
	for u := 0; u < a.K; u++ {
		slotOf[u] = make(map[int]int, len(ar.workerFiles[u]))
		for j, v := range ar.workerFiles[u] {
			slotOf[u][v] = j
		}
	}
	maxR := 1
	for v := 0; v < a.F; v++ {
		holders := a.FileWorkers(v)
		refs := make([]slotRef, len(holders))
		for i, u := range holders {
			refs[i] = slotRef{worker: u, slot: slotOf[u][v]}
		}
		ar.fileReplicas[v] = refs
		if len(refs) > maxR {
			maxR = len(refs)
		}
	}

	byzFileSet := make(map[int]bool)
	for u := range byzSet {
		ar.byzWorkers = append(ar.byzWorkers, u)
		for _, v := range ar.workerFiles[u] {
			byzFileSet[v] = true
		}
	}
	slices.Sort(ar.byzWorkers)
	for v := range byzFileSet {
		ar.byzFiles = append(ar.byzFiles, v)
	}
	slices.Sort(ar.byzFiles)

	ar.oracle = make([][]float64, a.F)
	needsOracle := func(v int) bool {
		return fullOracle || allByz(ar.fileReplicas[v], byzSet)
	}
	needOracle := 0
	for v := 0; v < a.F; v++ {
		if needsOracle(v) {
			needOracle++
		}
	}
	if needOracle > 0 {
		oracleBacking := make([]float64, needOracle*dim)
		for v := 0; v < a.F; v++ {
			if needsOracle(v) {
				ar.oracle[v] = oracleBacking[:dim:dim]
				oracleBacking = oracleBacking[dim:]
			}
		}
	}

	ar.trueGrads = make([][]float64, a.F)
	ar.crafted = make([][]float64, a.F)
	ar.winners = make([][]float64, a.F)
	ar.live = make([][]float64, 0, a.F)
	ar.missing = make([]bool, a.K)
	ar.update = make([]float64, dim)
	ar.replicas = make([][][]float64, poolWidth)
	ar.replWorkers = make([][]int, poolWidth)
	for w := range ar.replicas {
		ar.replicas[w] = make([][]float64, 0, maxR)
		ar.replWorkers[w] = make([]int, 0, maxR)
	}
	ar.distorted = make([]int, poolWidth)
	ar.degraded = make([]int, poolWidth)
	ar.dropped = make([]int, poolWidth)
	ar.voteErrs = make([]error, poolWidth)
	return ar
}

// allByz reports whether every replica holder of the file is Byzantine.
func allByz(refs []slotRef, byzSet map[int]bool) bool {
	for _, ref := range refs {
		if !byzSet[ref.worker] {
			return false
		}
	}
	return true
}
