package cluster

import (
	"runtime/metrics"
	"time"

	"byzshield/internal/obs"
)

// phaseBuckets spans 50µs–~6.5s exponentially: round phases on the
// quickstart config sit in the 100µs–10ms range, loopback fleets reach
// into seconds under injected stragglers.
var phaseBuckets = obs.ExpBuckets(50e-6, 2.4, 14)

// engineInstruments is the engine's preallocated metric state. Every
// field is registered once at construction; observeRound performs only
// atomic stores/adds on those pointers, keeping the steady-state
// allocation budget intact with metrics enabled.
type engineInstruments struct {
	rounds    *obs.Counter
	distorted *obs.Counter
	degraded  *obs.Counter
	dropped   *obs.Counter

	reportBytes    *obs.Counter
	reportRawBytes *obs.Counter
	broadcastBytes *obs.Counter

	phase [obs.NumPhases]*obs.Histogram

	lr            *obs.Gauge
	meanRep       *obs.Gauge
	flagged       *obs.Gauge
	blacklisted   *obs.Gauge
	missing       *obs.Gauge
	aggDegraded   *obs.Counter
	arenaOccupied *obs.Gauge
	arenaSlots    *obs.Gauge

	// Allocation guard: heapAllocs is the per-round delta of
	// /gc/heap/allocs:objects, sampled with a preallocated sample slice
	// so the read itself stays off the allocator. A steady-state value
	// above the low single digits means the hot path regressed — the
	// live counterpart of TestSteadyStateAllocsPerRound.
	heapAllocs   *obs.Gauge
	allocSamples [1]metrics.Sample
	prevAllocs   uint64

	// slotCount[u] caches len(arena.cur[u]) so the occupancy pass does
	// not chase slice headers per round.
	slotCount  []int
	totalSlots int
}

// newEngineInstruments registers the engine's metric families on r.
func newEngineInstruments(r *obs.Registry, e *Engine) *engineInstruments {
	ins := &engineInstruments{
		rounds:         r.Counter("byzshield_rounds_total", "", "protocol rounds completed"),
		distorted:      r.Counter("byzshield_files_distorted_total", "", "files whose vote the Byzantines won"),
		degraded:       r.Counter("byzshield_files_degraded_total", "", "files voted over fewer than R surviving replicas"),
		dropped:        r.Counter("byzshield_files_dropped_total", "", "files excluded from aggregation (below quorum or tied degraded vote)"),
		reportBytes:    r.Counter("byzshield_report_bytes_total", "", "serialized worker-to-PS gradient report bytes"),
		reportRawBytes: r.Counter("byzshield_report_raw_bytes_total", "", "raw-frame equivalent of the report bytes"),
		broadcastBytes: r.Counter("byzshield_broadcast_bytes_total", "", "serialized PS-to-worker parameter broadcast bytes"),
		lr:             r.Gauge("byzshield_learning_rate", "", "learning rate of the last round"),
		meanRep:        r.Gauge("byzshield_mean_reputation", "", "fleet-wide mean reputation after the last detection pass"),
		flagged:        r.Gauge("byzshield_flagged_workers", "", "workers flagged by the detector in the last round"),
		blacklisted:    r.Gauge("byzshield_blacklisted_workers", "", "cumulative blacklist size"),
		missing:        r.Gauge("byzshield_missing_workers", "", "workers absent from the last round"),
		aggDegraded:    r.Counter("byzshield_aggregator_degraded_total", "", "rounds aggregated with the median fallback after dropped files broke feasibility"),
		arenaOccupied:  r.Gauge("byzshield_arena_occupied_slots", "", "gradient arena replica slots filled in the last round"),
		arenaSlots:     r.Gauge("byzshield_arena_total_slots", "", "gradient arena replica slot capacity"),
		heapAllocs:     r.Gauge("byzshield_heap_allocs_per_round", "", "heap objects allocated during the last round (steady-state budget is low single digits)"),
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		ins.phase[p] = r.Histogram("byzshield_phase_seconds", `phase="`+p.Name()+`"`,
			"wall-clock time per round phase", phaseBuckets)
	}
	ins.slotCount = make([]int, len(e.arena.cur))
	for u, slots := range e.arena.cur {
		ins.slotCount[u] = len(slots)
		ins.totalSlots += len(slots)
	}
	ins.arenaSlots.Set(float64(ins.totalSlots))
	ins.allocSamples[0].Name = "/gc/heap/allocs:objects"
	metrics.Read(ins.allocSamples[:])
	ins.prevAllocs = ins.allocSamples[0].Value.Uint64()
	return ins
}

// observeRound feeds one completed round into the instruments.
func (ins *engineInstruments) observeRound(e *Engine, stats *RoundStats, prep, collect, vote, aggTotal, broadcast time.Duration) {
	ins.rounds.Inc()
	ins.distorted.Add(int64(stats.DistortedFiles))
	ins.degraded.Add(int64(stats.DegradedFiles))
	ins.dropped.Add(int64(stats.DroppedFiles))
	ins.reportBytes.Add(stats.Times.ReportBytes)
	ins.reportRawBytes.Add(stats.Times.ReportRawBytes)
	ins.broadcastBytes.Add(stats.Times.BroadcastBytes)
	if stats.AggregatorDegraded {
		ins.aggDegraded.Inc()
	}
	ins.phase[obs.PhasePrep].Observe(prep.Seconds())
	ins.phase[obs.PhaseBroadcast].Observe(broadcast.Seconds())
	ins.phase[obs.PhaseCollect].Observe(collect.Seconds())
	ins.phase[obs.PhaseVote].Observe(vote.Seconds())
	ins.phase[obs.PhaseAggregate].Observe((aggTotal - vote).Seconds())
	ins.phase[obs.PhaseDetect].Observe(stats.Times.Detect.Seconds())
	ins.lr.Set(stats.LR)
	ins.meanRep.Set(stats.MeanReputation)
	ins.flagged.Set(float64(stats.FlaggedWorkers))
	ins.blacklisted.Set(float64(stats.Blacklisted))
	ins.missing.Set(float64(len(stats.MissingWorkers)))
	occupied := ins.totalSlots
	for _, u := range stats.MissingWorkers {
		occupied -= ins.slotCount[u]
	}
	ins.arenaOccupied.Set(float64(occupied))
	// The allocation guard reads the runtime's cumulative heap-object
	// counter and publishes the per-round delta. Reading into the
	// preallocated sample is itself allocation-free, so the guard does
	// not distort what it measures — minus the handful of objects the
	// round legitimately allocates, the published number tracks the
	// TestSteadyStateAllocsPerRound budget live.
	metrics.Read(ins.allocSamples[:])
	cur := ins.allocSamples[0].Value.Uint64()
	ins.heapAllocs.Set(float64(cur - ins.prevAllocs))
	ins.prevAllocs = cur
}
