package cluster

import (
	"math"
	"testing"

	"byzshield/internal/attack"
	"byzshield/internal/fault"
	"byzshield/internal/registry"
)

// TestShardedEngineBitIdentical pins the sharded aggregation plane's
// core contract: for every registry aggregator, engines running with
// 2, 7 and 64 shards produce parameter trajectories bit-identical to
// the unsharded engine, under an active attack (distinct replicas per
// file, exercising the mask fast path) and a flaky fault model
// (degraded votes, exercising the serial fallback).
func TestShardedEngineBitIdentical(t *testing.T) {
	reg := registry.Default
	for _, name := range reg.Aggregators() {
		t.Run(name, func(t *testing.T) {
			run := func(shards int) []float64 {
				agg, err := reg.Aggregator(name, aggParams[name])
				if err != nil {
					t.Fatal(err)
				}
				cfg := testSetup(t, []int{2, 7, 11}, attack.ALIE{}, agg)
				cfg.Fault = fault.Flaky{Workers: []int{0, 5}, P: 0.4, Seed: 23}
				cfg.Shards = shards
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				for i := 0; i < 15; i++ {
					if _, err := e.RunRound(); err != nil {
						t.Fatalf("round %d (shards %d): %v", i, shards, err)
					}
				}
				return e.Params()
			}
			serial := run(0)
			for _, shards := range []int{2, 7, 64} {
				sharded := run(shards)
				for i := range serial {
					if math.Float64bits(serial[i]) != math.Float64bits(sharded[i]) {
						t.Fatalf("shards %d: param %d diverged: serial %v, sharded %v",
							shards, i, serial[i], sharded[i])
					}
				}
			}
		})
	}
}

// TestPrepareAheadBitIdentical pins that drawing and partitioning round
// t+1's batch during round t (PrepareAhead) does not perturb the sample
// stream: trajectories with and without prepare-ahead, with and without
// shards, are bit-identical.
func TestPrepareAheadBitIdentical(t *testing.T) {
	run := func(prepare bool, shards int) []float64 {
		cfg := testSetup(t, []int{2, 7}, attack.ALIE{}, mustAggregator(t, "median"))
		cfg.PrepareAhead = prepare
		cfg.Shards = shards
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 12; i++ {
			if _, err := e.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		return e.Params()
	}
	base := run(false, 0)
	for _, mode := range []struct {
		prepare bool
		shards  int
	}{{true, 0}, {true, 4}, {false, 4}} {
		got := run(mode.prepare, mode.shards)
		for i := range base {
			if math.Float64bits(base[i]) != math.Float64bits(got[i]) {
				t.Fatalf("prepare=%v shards=%d: param %d diverged: %v vs %v",
					mode.prepare, mode.shards, i, base[i], got[i])
			}
		}
	}
}

// TestShardConfigValidation covers the plane's configuration rules.
func TestShardConfigValidation(t *testing.T) {
	cfg := testSetup(t, nil, attack.Benign{}, mustAggregator(t, "median"))
	cfg.Shards = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative shard count accepted")
	}
	cfg = testSetup(t, nil, attack.Benign{}, mustAggregator(t, "median"))
	cfg.Shards = 4
	cfg.VoteTolerance = 1e-9
	if _, err := New(cfg); err == nil {
		t.Fatal("sharded voting with VoteTolerance accepted")
	}
	// A shard count exceeding the model dimension clamps rather than
	// failing: every shard must own at least one coordinate.
	cfg = testSetup(t, nil, attack.Benign{}, mustAggregator(t, "median"))
	cfg.Shards = 1 << 20
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got, want := e.plane.n, cfg.Model.NumParams(); got != want {
		t.Fatalf("shard count %d, want clamp to dim %d", got, want)
	}
	if _, err := e.RunRound(); err != nil {
		t.Fatal(err)
	}
}
