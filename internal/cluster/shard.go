package cluster

import (
	"math/bits"
	"slices"

	"byzshield/internal/wire"
)

// shardPlane is the sharded aggregation plane: the parameter vector is
// split into n contiguous coordinate ranges (wire.ShardRange), and each
// shard owns the per-file range votes and the aggregate/step work for
// its range. The plane exists so a network source can stream per-shard
// report frames and vote a shard the moment its last frame lands —
// while other shards still collect — and so the later multi-process PS
// can move a shard out of process without changing the vote semantics.
//
// Bit-identity with the serial (unsharded) vote is by construction, not
// by luck. A shard's range vote groups the surviving replicas of a file
// by bit-equality restricted to the shard's coordinates — a coarsening
// of the global grouping. The fast path elects a file only when every
// shard elects the same untied supporter mask M: members of M then
// agree on every range, hence globally, so M is contained in a global
// equality group G; conversely G's members agree on every range, so
// within each shard G sits inside the one group that elected M, giving
// G ⊆ M and therefore M = G exactly. Any other global group lies
// inside some losing shard group and is strictly smaller, so M is the
// strict global plurality winner — the same replica the serial vote
// elects, with the same lowest-first-index representative. Every other
// case — a tied shard, disagreeing masks, an empty survivor set — falls
// back to the serial full-vector vote for that file, which also keeps
// the degraded-tie handling (reputation runoff, drop-on-tie) in exactly
// one place.
type shardPlane struct {
	n      int
	ranges [][2]int
	// mask[s][v] is the supporter bitmask shard s elected for file v
	// over positions in the file's replica list (0 = no survivors or
	// replica list too wide for the mask); tied[s][v] flags a shard-
	// level tie. dist[s][v] records that the elected replica differs
	// from the oracle gradient inside the shard's range.
	mask [][]uint64
	tied [][]bool
	dist [][]bool
	// voted[s] marks shard s's range votes as computed for this round;
	// earlyValid[s]/early[s] record that the votes were taken
	// mid-collection against a snapshot of the missing set, which must
	// match the final set for the early result to stand.
	voted      []bool
	earlyValid []bool
	early      [][]uint64
	final      []uint64
	// aggErr[s] is shard s's aggregation error (lowest shard index
	// wins, matching the serial error order).
	aggErr []error
}

// maskWidth bounds the replica-position bitmask. Replication factors
// are tiny in every real assignment; a wider replica list disables the
// fast path (every file falls back to the serial vote) rather than the
// plane.
const maskWidth = 64

func newShardPlane(n, dim, files, workers int) *shardPlane {
	pl := &shardPlane{
		n:          n,
		ranges:     make([][2]int, n),
		mask:       make([][]uint64, n),
		tied:       make([][]bool, n),
		dist:       make([][]bool, n),
		voted:      make([]bool, n),
		earlyValid: make([]bool, n),
		early:      make([][]uint64, n),
		aggErr:     make([]error, n),
	}
	words := (workers + 63) / 64
	for s := 0; s < n; s++ {
		lo, hi := wire.ShardRange(dim, n, s)
		pl.ranges[s] = [2]int{lo, hi}
		pl.mask[s] = make([]uint64, files)
		pl.tied[s] = make([]bool, files)
		pl.dist[s] = make([]bool, files)
		pl.early[s] = make([]uint64, words)
	}
	pl.final = make([]uint64, words)
	return pl
}

// beginRound clears the per-round vote state.
func (pl *shardPlane) beginRound() {
	for s := 0; s < pl.n; s++ {
		pl.voted[s] = false
		pl.earlyValid[s] = false
	}
}

// missingBits packs the missing flags into dst as a bitset.
func missingBits(dst []uint64, missing []bool) {
	clear(dst)
	for u, m := range missing {
		if m {
			dst[u>>6] |= 1 << (u & 63)
		}
	}
}

// voteShard computes shard s's range votes for every file against the
// arena's current missing set. Safe to run concurrently for distinct
// shards (disjoint state, read-only arena access), and safe to run on
// the collecting goroutine mid-round once every live worker's shard-s
// frame has been delivered (the inbox handoff ordered those decodes
// before this read).
func (pl *shardPlane) voteShard(e *Engine, s int) {
	ar := e.arena
	lo, hi := pl.ranges[s][0], pl.ranges[s][1]
	mask, tied, dist := pl.mask[s], pl.tied[s], pl.dist[s]
	var pos [maskWidth]int
	var canon, counts [maskWidth]int
	for v := range ar.fileReplicas {
		refs := ar.fileReplicas[v]
		mask[v], tied[v], dist[v] = 0, false, false
		if len(refs) > maskWidth {
			tied[v] = true // force the serial fallback
			continue
		}
		n := 0
		for i := range refs {
			if !ar.missing[refs[i].worker] {
				pos[n] = i
				n++
			}
		}
		if n == 0 {
			continue
		}
		rng := func(i int) []float64 {
			ref := refs[pos[i]]
			return ar.cur[ref.worker][ref.slot][lo:hi]
		}
		best := 0
		if n == 1 {
			mask[v] = 1 << pos[0]
		} else {
			// Mirror of vote.majoritySmall restricted to the shard's
			// coordinate range: group replicas by bit-equality, elect
			// the largest group, break ties toward the lowest index.
			for i := 0; i < n; i++ {
				c := i
				gi := rng(i)
				for j := 0; j < i; j++ {
					if canon[j] == j && equalBits(rng(j), gi) {
						c = j
						break
					}
				}
				canon[i] = c
				if c == i {
					counts[i] = 1
				} else {
					counts[c]++
				}
			}
			for i := 1; i < n; i++ {
				if canon[i] == i && counts[i] > counts[best] {
					best = i
				}
			}
			m := uint64(0)
			for i := 0; i < n; i++ {
				if canon[i] == best {
					m |= 1 << pos[i]
				}
				if canon[i] == i && i != best && counts[i] == counts[best] {
					tied[v] = true
				}
			}
			mask[v] = m
		}
		if ar.trueGrads[v] != nil {
			dist[v] = !equalBits(rng(best), ar.trueGrads[v][lo:hi])
		}
	}
}

// voteShardEarly runs shard s's range votes mid-collection, recording
// the missing-set snapshot they were taken against. Called by network
// sources from the collecting goroutine when every live worker's
// shard-s frame has arrived; shardedVotePhase revalidates the snapshot
// once collection closes and recomputes the shard if participation
// changed after the early vote.
func (e *Engine) voteShardEarly(s int) {
	pl := e.plane
	if pl == nil || s < 0 || s >= pl.n || pl.voted[s] {
		return
	}
	missingBits(pl.early[s], e.arena.missing)
	pl.voteShard(e, s)
	pl.voted[s] = true
	pl.earlyValid[s] = true
}

// shardedVotePhase is the plane's replacement for the pooled
// whole-vector vote phase: it completes (or revalidates) every shard's
// range votes, then reconciles them serially per file — electing on the
// agreed-mask fast path and falling back to the exact serial vote for
// every file a shard tied or disagreed on. Counters land in the slot-0
// arena scratch, which the caller's existing summing loop picks up.
func (e *Engine) shardedVotePhase() {
	pl := e.plane
	ar := e.arena
	missingBits(pl.final, ar.missing)
	e.runPhase(pl.n, func(_, s int) {
		if pl.voted[s] && pl.earlyValid[s] && slices.Equal(pl.early[s], pl.final) {
			return
		}
		pl.voteShard(e, s)
		pl.voted[s] = true
		pl.earlyValid[s] = false
	})
	for v := range ar.fileReplicas {
		refs := ar.fileReplicas[v]
		n := 0
		for i := range refs {
			if !ar.missing[refs[i].worker] {
				n++
			}
		}
		if n < e.quorum {
			ar.winners[v] = nil
			ar.dropped[0]++
			continue
		}
		m := pl.mask[0][v]
		fast := m != 0 && !pl.tied[0][v]
		for s := 1; fast && s < pl.n; s++ {
			if pl.mask[s][v] != m || pl.tied[s][v] {
				fast = false
			}
		}
		if !fast {
			e.voteFile(0, v)
			continue
		}
		if n < len(refs) {
			ar.degraded[0]++
		}
		ref := refs[bits.TrailingZeros64(m)]
		ar.winners[v] = ar.cur[ref.worker][ref.slot]
		// Same lossy-tier exemption as voteFile: quantized replicas never
		// bit-match the unquantized true gradient.
		if !e.cfg.SignMessages && !e.cfg.UplinkTier.Lossy() && ar.trueGrads[v] != nil {
			for s := 0; s < pl.n; s++ {
				if pl.dist[s][v] {
					ar.distorted[0]++
					break
				}
			}
		}
	}
}
