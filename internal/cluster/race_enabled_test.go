//go:build race

package cluster

// raceEnabled reports that the race detector is active; its runtime
// instrumentation allocates, so allocation-count assertions are
// skipped under -race.
const raceEnabled = true
