package cluster

import (
	"context"
	"math"
	"testing"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

// testSetup32 builds the f32 counterpart of testSetup: MOLS(5,3),
// softmax on the same separable synthetic dataset.
func testSetup32(t testing.TB) Config32 {
	t.Helper()
	a, err := assign.MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 600, Test: 200, Dim: 12, Classes: 10, Seed: 17, ClassSep: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmax(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	return Config32{
		Assignment: a,
		Model:      m,
		Train:      train,
		Test:       test,
		BatchSize:  100,
		Aggregator: aggregate.Median{},
		Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 25},
		Momentum:   0.9,
		Seed:       5,
	}
}

// run32 steps an engine for rounds and returns the final parameters.
func run32(t *testing.T, cfg Config32, rounds int) []float32 {
	t.Helper()
	e, err := New32(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < rounds; i++ {
		if _, err := e.StepOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return e.Params()
}

// TestEngine32SerialPooledShardedIdentical pins the tentpole bit-identity
// discipline: the f32 serial engine, the pooled engine, the sharded
// engine, and prepare-ahead all produce the same parameter bits.
func TestEngine32SerialPooledShardedIdentical(t *testing.T) {
	base := testSetup32(t)
	base.Parallelism = 1
	serial := run32(t, base, 8)

	variants := map[string]func(*Config32){
		"pooled":       func(c *Config32) { c.Parallelism = 4 },
		"sharded":      func(c *Config32) { c.Parallelism = 4; c.Shards = 5 },
		"prepareAhead": func(c *Config32) { c.Parallelism = 2; c.PrepareAhead = true },
	}
	for name, mutate := range variants {
		cfg := testSetup32(t)
		mutate(&cfg)
		got := run32(t, cfg, 8)
		if !equalBits32(serial, got) {
			t.Errorf("%s engine diverged from serial at f32", name)
		}
	}
}

// TestEngine32LossyTierMatchesWireQuant checks a lossy f32 run differs
// from the lossless run (the quantization is real) while remaining
// bit-deterministic across pool widths at a fixed shard count (the
// quantization granularity is per (file, shard range), so only runs
// with equal shard counts are comparable — exactly as at f64).
func TestEngine32LossyTierMatchesWireQuant(t *testing.T) {
	for _, tier := range []wire.UplinkTier{wire.TierSign, wire.TierInt8} {
		base := testSetup32(t)
		base.UplinkTier = tier
		base.Parallelism = 1
		base.Shards = 3
		serial := run32(t, base, 5)

		pooled := testSetup32(t)
		pooled.UplinkTier = tier
		pooled.Parallelism = 4
		pooled.Shards = 3
		if got := run32(t, pooled, 5); !equalBits32(serial, got) {
			t.Errorf("tier %s: pooled lossy run diverged from serial at equal shard count", tier)
		}

		lossless := testSetup32(t)
		lossless.Parallelism = 1
		lossless.Shards = 3
		if got := run32(t, lossless, 5); equalBits32(serial, got) {
			t.Errorf("tier %s: lossy run identical to lossless (quantization not applied)", tier)
		}
	}
}

// TestEngine32TracksF64 checks the two precision tiers of the same
// experiment stay numerically close over a short run and both train.
func TestEngine32TracksF64(t *testing.T) {
	cfg32 := testSetup32(t)
	cfg32.Parallelism = 2
	e32, err := New32(cfg32)
	if err != nil {
		t.Fatal(err)
	}
	defer e32.Close()

	cfg64 := testSetup(t, nil, nil, aggregate.Median{})
	cfg64.Parallelism = 2
	e64, err := New(cfg64)
	if err != nil {
		t.Fatal(err)
	}
	defer e64.Close()

	for i := 0; i < 10; i++ {
		if _, err := e32.StepOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := e64.StepOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	p32, p64 := e32.Params(), e64.Params()
	var scale float64
	for _, v := range p64 {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range p64 {
		if diff := math.Abs(p64[i] - float64(p32[i])); diff > 1e-3*(math.Abs(p64[i])+scale) {
			t.Fatalf("param %d: f64=%v f32=%v", i, p64[i], p32[i])
		}
	}
	if acc := e32.Evaluate(); acc < 0.5 {
		t.Errorf("f32 accuracy %v after 10 rounds on separable data", acc)
	}
}

// TestEngine32NonIID checks the Dirichlet distribution knob drives the
// f32 tier and stays deterministic.
func TestEngine32NonIID(t *testing.T) {
	cfg := testSetup32(t)
	cfg.Distribution = &data.Dirichlet{Alpha: 0.2, Seed: 9}
	a := run32(t, cfg, 4)
	cfg2 := testSetup32(t)
	cfg2.Distribution = &data.Dirichlet{Alpha: 0.2, Seed: 9}
	cfg2.Parallelism = 4
	if b := run32(t, cfg2, 4); !equalBits32(a, b) {
		t.Fatal("non-IID f32 run not deterministic across widths")
	}
	cfg3 := testSetup32(t)
	if c := run32(t, cfg3, 4); equalBits32(a, c) {
		t.Fatal("Dirichlet split did not change the sample stream")
	}
}

// TestEngine32Validation exercises the constructor's rejections.
func TestEngine32Validation(t *testing.T) {
	bad := testSetup32(t)
	bad.Aggregator = nil
	if _, err := New32(bad); err == nil {
		t.Error("nil aggregator accepted")
	}
	bad = testSetup32(t)
	bad.BatchSize = 10
	if _, err := New32(bad); err == nil {
		t.Error("batch < files accepted")
	}
	bad = testSetup32(t)
	bad.Quorum = 99
	if _, err := New32(bad); err == nil {
		t.Error("quorum > R accepted")
	}
	bad = testSetup32(t)
	bad.UplinkTier = wire.TierSign
	bad.Source = localSource32{}
	if _, err := New32(bad); err == nil {
		t.Error("lossy tier with external source accepted")
	}
}

// TestEngine32RunHistory drives Run end to end.
func TestEngine32RunHistory(t *testing.T) {
	cfg := testSetup32(t)
	e, err := New32(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	h, err := e.Run(context.Background(), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Points) != 2 {
		t.Fatalf("want 2 eval points, got %d", len(h.Points))
	}
	if e.Iteration() != 6 {
		t.Fatalf("iteration %d after 6 rounds", e.Iteration())
	}
}
