package cluster

import (
	"math"
	"testing"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/data"
	"byzshield/internal/fault"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
)

// degradeConfig builds a baseline (r = 1) run where a mass crash pushes
// the live operand count below Krum's n ≥ 2c+3 floor mid-run.
func degradeConfig(t *testing.T, agg aggregate.Aggregator, flt fault.Fault) Config {
	t.Helper()
	a, err := assign.Baseline(9)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 300, Test: 100, Dim: 6, Classes: 3, Seed: 5, ClassSep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmax(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Assignment: a, Model: m, Train: train, Test: test,
		BatchSize:  90,
		Aggregator: agg,
		Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 20},
		Momentum:   0.9, Seed: 11,
		Fault: flt,
	}
}

// TestAggregatorDegradesToMedianUnderShrinkage: Krum with c = 1 needs
// n ≥ 5 operands; crashing 5 of 9 baseline workers leaves 4 live files,
// so from the crash round on every round must fall back to
// coordinate-wise median (flagged in RoundStats) instead of erroring.
func TestAggregatorDegradesToMedianUnderShrinkage(t *testing.T) {
	flt := fault.Crash{Workers: []int{0, 1, 2, 3, 4}, AtRound: 2}
	e, err := New(degradeConfig(t, aggregate.Krum{C: 1}, flt))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for round := 0; round < 6; round++ {
		stats, err := e.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		wantDegraded := round >= 2
		if stats.AggregatorDegraded != wantDegraded {
			t.Errorf("round %d: AggregatorDegraded = %v, want %v", round, stats.AggregatorDegraded, wantDegraded)
		}
		if wantDegraded && stats.DroppedFiles != 5 {
			t.Errorf("round %d: dropped %d files, want 5", round, stats.DroppedFiles)
		}
	}
}

// TestDegradedRoundMatchesMedian: a feasibility-degraded round must
// produce exactly the update a median engine produces — the fallback is
// the real median rule on the same survivors, not an approximation.
func TestDegradedRoundMatchesMedian(t *testing.T) {
	flt := fault.Crash{Workers: []int{0, 1, 2, 3, 4}, AtRound: 0}
	krumEng, err := New(degradeConfig(t, aggregate.Krum{C: 1}, flt))
	if err != nil {
		t.Fatal(err)
	}
	defer krumEng.Close()
	medEng, err := New(degradeConfig(t, aggregate.Median{}, flt))
	if err != nil {
		t.Fatal(err)
	}
	defer medEng.Close()
	for round := 0; round < 4; round++ {
		ks, err := krumEng.RunRound()
		if err != nil {
			t.Fatalf("krum round %d: %v", round, err)
		}
		if !ks.AggregatorDegraded {
			t.Fatalf("round %d: krum run not degraded", round)
		}
		if _, err := medEng.RunRound(); err != nil {
			t.Fatalf("median round %d: %v", round, err)
		}
	}
	kp, mp := krumEng.Params(), medEng.Params()
	for i := range kp {
		if math.Float64bits(kp[i]) != math.Float64bits(mp[i]) {
			t.Fatalf("param %d: degraded-krum %x, median %x", i, math.Float64bits(kp[i]), math.Float64bits(mp[i]))
		}
	}
}

// TestInfeasibleConfigStillErrors: the mid-run fallback must not paper
// over a configuration that was never feasible — Krum demanding more
// operands than the assignment has files errors on round 1 as before.
func TestInfeasibleConfigStillErrors(t *testing.T) {
	e, err := New(degradeConfig(t, aggregate.Krum{C: 4}, nil)) // needs n ≥ 11 > 9
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.RunRound(); err == nil {
		t.Fatal("never-feasible Krum config trained without error")
	}
}

// TestMeasuredBroadcastDeltaReducesBytes: with MeasureComm on, delta
// parameter broadcasts (periodic full refresh) must move strictly fewer
// PS→worker bytes than full-vector broadcasts while leaving the
// parameter trajectory bit-identical.
func TestMeasuredBroadcastDeltaReducesBytes(t *testing.T) {
	run := func(fullEvery int) (int64, []float64) {
		t.Helper()
		cfg := degradeConfig(t, aggregate.Median{}, nil)
		cfg.MeasureComm = true
		cfg.BroadcastFullEvery = fullEvery
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for round := 0; round < 12; round++ {
			stats, err := e.RunRound()
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if stats.Times.BroadcastBytes <= 0 {
				t.Fatalf("round %d: no broadcast bytes measured", round)
			}
		}
		return e.Times().BroadcastBytes, e.Params()
	}
	fullBytes, fullParams := run(0)
	deltaBytes, deltaParams := run(4)
	if deltaBytes >= fullBytes {
		t.Errorf("delta broadcasts moved %d bytes, full %d — no saving", deltaBytes, fullBytes)
	}
	for i := range fullParams {
		if math.Float64bits(fullParams[i]) != math.Float64bits(deltaParams[i]) {
			t.Fatalf("param %d: broadcast policy changed the trajectory", i)
		}
	}
}
