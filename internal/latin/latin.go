// Package latin implements Latin squares and families of Mutually
// Orthogonal Latin Squares (MOLS), the combinatorial structure behind
// ByzShield's primary task-assignment scheme (Sec. 4.1 of the paper).
//
// A Latin square of degree l is an l×l array over l symbols in which
// every symbol appears exactly once in each row and each column
// (Definition 1). Two squares are orthogonal when superimposing them
// yields every ordered symbol pair exactly once (Definition 2). The
// standard construction L_α(i,j) = α·i + j over the finite field F_l
// yields the maximal family of l−1 MOLS for any prime power l; ByzShield
// uses the first r members of this family to place each of the l² files
// on r workers.
package latin

import (
	"fmt"

	"byzshield/internal/gf"
)

// Square is a Latin square candidate of degree l; Cell[i][j] holds the
// symbol at row i, column j. Symbols are integers in [0, l).
type Square struct {
	L     int
	Cells [][]int
}

// NewSquare allocates a degree-l square with all cells zero (not yet a
// valid Latin square; fill it and check with Validate).
func NewSquare(l int) *Square {
	if l < 1 {
		panic(fmt.Sprintf("latin: degree %d < 1", l))
	}
	cells := make([][]int, l)
	backing := make([]int, l*l)
	for i := range cells {
		cells[i], backing = backing[:l], backing[l:]
	}
	return &Square{L: l, Cells: cells}
}

// At returns the symbol at (i, j).
func (s *Square) At(i, j int) int { return s.Cells[i][j] }

// Validate returns nil when s is a valid Latin square: every cell in
// range and every symbol exactly once per row and per column.
func (s *Square) Validate() error {
	l := s.L
	if len(s.Cells) != l {
		return fmt.Errorf("latin: %d rows, want %d", len(s.Cells), l)
	}
	for i, row := range s.Cells {
		if len(row) != l {
			return fmt.Errorf("latin: row %d has %d cols, want %d", i, len(row), l)
		}
		seen := make([]bool, l)
		for j, v := range row {
			if v < 0 || v >= l {
				return fmt.Errorf("latin: cell (%d,%d) = %d out of range [0,%d)", i, j, v, l)
			}
			if seen[v] {
				return fmt.Errorf("latin: symbol %d repeated in row %d", v, i)
			}
			seen[v] = true
		}
	}
	for j := 0; j < l; j++ {
		seen := make([]bool, l)
		for i := 0; i < l; i++ {
			v := s.Cells[i][j]
			if seen[v] {
				return fmt.Errorf("latin: symbol %d repeated in column %d", v, j)
			}
			seen[v] = true
		}
	}
	return nil
}

// SymbolCells returns the l cells (i, j) holding symbol sym, in row
// order. For a valid Latin square there is exactly one per row.
func (s *Square) SymbolCells(sym int) [][2]int {
	if sym < 0 || sym >= s.L {
		panic(fmt.Sprintf("latin: symbol %d out of range [0,%d)", sym, s.L))
	}
	out := make([][2]int, 0, s.L)
	for i := 0; i < s.L; i++ {
		for j := 0; j < s.L; j++ {
			if s.Cells[i][j] == sym {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Orthogonal reports whether squares a and b of equal degree are
// orthogonal: each ordered pair (a[i][j], b[i][j]) occurs exactly once.
func Orthogonal(a, b *Square) bool {
	if a.L != b.L {
		return false
	}
	l := a.L
	seen := make([]bool, l*l)
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			key := a.Cells[i][j]*l + b.Cells[i][j]
			if seen[key] {
				return false
			}
			seen[key] = true
		}
	}
	return true
}

// MOLS constructs a family of count mutually orthogonal Latin squares of
// degree l using L_α(i,j) = α·i + j over GF(l). It requires l to be a
// prime power and 1 <= count <= l-1 (the maximal family size).
func MOLS(l, count int) ([]*Square, error) {
	if count < 1 {
		return nil, fmt.Errorf("latin: MOLS count %d < 1", count)
	}
	if count > l-1 {
		return nil, fmt.Errorf("latin: MOLS count %d exceeds maximum %d for degree %d", count, l-1, l)
	}
	field, err := gf.New(l)
	if err != nil {
		return nil, fmt.Errorf("latin: degree %d: %w", l, err)
	}
	squares := make([]*Square, count)
	// α runs over the first `count` nonzero field elements in encoding
	// order. For prime l this reproduces the paper's α = 1, 2, ..., r
	// family exactly (Table 1 uses α = 1, 2, 3 with l = 5).
	for a := 0; a < count; a++ {
		alpha := a + 1
		sq := NewSquare(l)
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				sq.Cells[i][j] = field.Add(field.Mul(alpha, i), j)
			}
		}
		squares[a] = sq
	}
	return squares, nil
}

// MustMOLS is MOLS that panics on error, for parameters already
// validated by the caller.
func MustMOLS(l, count int) []*Square {
	s, err := MOLS(l, count)
	if err != nil {
		panic(err)
	}
	return s
}

// ValidateFamily checks that every square is Latin and every pair is
// orthogonal.
func ValidateFamily(squares []*Square) error {
	for i, s := range squares {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("latin: square %d: %w", i, err)
		}
	}
	for i := 0; i < len(squares); i++ {
		for j := i + 1; j < len(squares); j++ {
			if !Orthogonal(squares[i], squares[j]) {
				return fmt.Errorf("latin: squares %d and %d are not orthogonal", i, j)
			}
		}
	}
	return nil
}

// String renders the square as rows of symbols.
func (s *Square) String() string {
	out := ""
	for i := 0; i < s.L; i++ {
		for j := 0; j < s.L; j++ {
			if j > 0 {
				out += " "
			}
			out += fmt.Sprintf("%d", s.Cells[i][j])
		}
		out += "\n"
	}
	return out
}
