package latin

import (
	"testing"
	"testing/quick"
)

func TestMOLSValidLatin(t *testing.T) {
	for _, l := range []int{2, 3, 4, 5, 7, 8, 9, 11} {
		squares, err := MOLS(l, l-1)
		if err != nil {
			t.Fatalf("MOLS(%d,%d): %v", l, l-1, err)
		}
		if len(squares) != l-1 {
			t.Fatalf("MOLS(%d) returned %d squares", l, len(squares))
		}
		for i, s := range squares {
			if err := s.Validate(); err != nil {
				t.Errorf("l=%d square %d invalid: %v", l, i, err)
			}
		}
	}
}

func TestMOLSPairwiseOrthogonal(t *testing.T) {
	for _, l := range []int{3, 4, 5, 7, 9} {
		squares := MustMOLS(l, l-1)
		if err := ValidateFamily(squares); err != nil {
			t.Errorf("l=%d: %v", l, err)
		}
	}
}

// TestPaperTable1 reproduces Table 1 of the paper: the first three MOLS
// of degree 5 from L_alpha(i,j) = alpha*i + j (mod 5).
func TestPaperTable1(t *testing.T) {
	squares := MustMOLS(5, 3)
	wantL1 := [][]int{
		{0, 1, 2, 3, 4},
		{1, 2, 3, 4, 0},
		{2, 3, 4, 0, 1},
		{3, 4, 0, 1, 2},
		{4, 0, 1, 2, 3},
	}
	wantL2 := [][]int{
		{0, 1, 2, 3, 4},
		{2, 3, 4, 0, 1},
		{4, 0, 1, 2, 3},
		{1, 2, 3, 4, 0},
		{3, 4, 0, 1, 2},
	}
	wantL3 := [][]int{
		{0, 1, 2, 3, 4},
		{3, 4, 0, 1, 2},
		{1, 2, 3, 4, 0},
		{4, 0, 1, 2, 3},
		{2, 3, 4, 0, 1},
	}
	for idx, want := range [][][]int{wantL1, wantL2, wantL3} {
		got := squares[idx]
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if got.Cells[i][j] != want[i][j] {
					t.Fatalf("L%d[%d][%d] = %d, want %d", idx+1, i, j, got.Cells[i][j], want[i][j])
				}
			}
		}
	}
}

func TestMOLSRejectsBadParams(t *testing.T) {
	if _, err := MOLS(6, 1); err == nil {
		t.Error("MOLS(6) accepted non-prime-power degree")
	}
	if _, err := MOLS(5, 5); err == nil {
		t.Error("MOLS(5,5) accepted count > l-1")
	}
	if _, err := MOLS(5, 0); err == nil {
		t.Error("MOLS(5,0) accepted count 0")
	}
}

func TestMustMOLSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMOLS(6,1) did not panic")
		}
	}()
	MustMOLS(6, 1)
}

func TestValidateCatchesCorruption(t *testing.T) {
	squares := MustMOLS(5, 1)
	s := squares[0]
	orig := s.Cells[2][3]
	s.Cells[2][3] = s.Cells[2][2] // duplicate in row 2
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted row duplicate")
	}
	s.Cells[2][3] = orig
	s.Cells[1][0] = 99 // out of range
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted out-of-range symbol")
	}
}

func TestValidateCatchesColumnDuplicate(t *testing.T) {
	// Rows are Latin but column 0 repeats symbol 0.
	s := NewSquare(2)
	s.Cells[0] = []int{0, 1}
	s.Cells[1] = []int{0, 1}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted column duplicate")
	}
}

func TestSymbolCells(t *testing.T) {
	squares := MustMOLS(5, 3)
	// Paper Example 1: symbol 0 of L1 sits at (0,0),(1,4),(2,3),(3,2),(4,1).
	cells := squares[0].SymbolCells(0)
	want := [][2]int{{0, 0}, {1, 4}, {2, 3}, {3, 2}, {4, 1}}
	if len(cells) != 5 {
		t.Fatalf("SymbolCells returned %d cells", len(cells))
	}
	for i, c := range cells {
		if c != want[i] {
			t.Errorf("cell %d = %v, want %v", i, c, want[i])
		}
	}
}

func TestSymbolCellsOnePerRow(t *testing.T) {
	for _, sq := range MustMOLS(7, 6) {
		for sym := 0; sym < 7; sym++ {
			cells := sq.SymbolCells(sym)
			if len(cells) != 7 {
				t.Fatalf("symbol %d appears %d times", sym, len(cells))
			}
			rows := make(map[int]bool)
			cols := make(map[int]bool)
			for _, c := range cells {
				if rows[c[0]] || cols[c[1]] {
					t.Fatalf("symbol %d repeats a row or column", sym)
				}
				rows[c[0]] = true
				cols[c[1]] = true
			}
		}
	}
}

func TestOrthogonalRejectsSelfAndMismatched(t *testing.T) {
	squares := MustMOLS(5, 2)
	if Orthogonal(squares[0], squares[0]) {
		t.Error("a square cannot be orthogonal to itself (degree > 1)")
	}
	other := MustMOLS(7, 1)
	if Orthogonal(squares[0], other[0]) {
		t.Error("squares of different degree cannot be orthogonal")
	}
}

func TestStringRendering(t *testing.T) {
	s := MustMOLS(3, 1)[0]
	got := s.String()
	want := "0 1 2\n1 2 0\n2 0 1\n"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: for random prime-power degrees and any two distinct family
// members, superimposition covers all l² ordered pairs.
func TestQuickOrthogonalCoverage(t *testing.T) {
	degrees := []int{3, 4, 5, 7, 8, 9}
	prop := func(dIdx, aIdx, bIdx uint8) bool {
		l := degrees[int(dIdx)%len(degrees)]
		squares := MustMOLS(l, l-1)
		a := int(aIdx) % (l - 1)
		b := int(bIdx) % (l - 1)
		if a == b {
			return true // skip identical pair
		}
		return Orthogonal(squares[a], squares[b])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMOLSConstruct7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = MustMOLS(7, 6)
	}
}
