package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Phase indexes one span of a protocol round in a RoundTrace.
type Phase int

const (
	// PhasePrep is next-round preparation (sampler draw + prep frames).
	PhasePrep Phase = iota
	// PhaseBroadcast is the parameter broadcast send (subset of the
	// communication span; zero on the in-process engine, which has no
	// separately timed send).
	PhaseBroadcast
	// PhaseCollect is gradient computation + collection. On a wire
	// source this is the whole Collect call; in-process it is the
	// compute+communication sum.
	PhaseCollect
	// PhaseVote is the per-file majority vote.
	PhaseVote
	// PhaseAggregate is robust aggregation + the optimizer step.
	PhaseAggregate
	// PhaseDetect is the detection/reputation pass (zero when no
	// detector is configured).
	PhaseDetect
	// PhaseEval is the held-out evaluation attached after the fact
	// (evals run off the round path on a snapshot).
	PhaseEval
	// NumPhases sizes per-phase arrays.
	NumPhases
)

// phaseNames is the JSONL/exposition name of each phase.
var phaseNames = [NumPhases]string{
	"prep", "broadcast", "collect", "vote", "aggregate", "detect", "eval",
}

// Name returns the phase's wire name.
func (p Phase) Name() string { return phaseNames[p] }

// RoundTrace is one recorded round. The worker-set slices are reused
// ring storage: Record copies into them with append(dst[:0], ...), so
// steady-state recording does not allocate once every slot has seen
// its largest set.
type RoundTrace struct {
	Round          int
	Shards         int
	PhaseNS        [NumPhases]int64
	ReportBytes    int64
	ReportRawBytes int64
	BroadcastBytes int64
	DistortedFiles int
	DegradedFiles  int
	DroppedFiles   int
	Rejoins        int
	Evictions      int
	StaleFrames    int
	MeanReputation float64
	Missing        []int // worker ids absent this round
	Flagged        []int // worker ids flagged by the detector
	Blacklisted    []int // worker ids newly blacklisted this round
}

// Tracer is a bounded ring of RoundTraces plus an optional JSONL sink.
// Record is alloc-free in steady state (the ring slots own their
// slices); the sink path allocates freely — it is only wired up for
// CLI runs, never in the alloc-gated benchmarks.
type Tracer struct {
	mu    sync.Mutex
	ring  []RoundTrace
	total int // rounds ever recorded
	label string
	sink  io.Writer
	buf   []byte // JSONL encode scratch
}

// NewTracer returns a tracer retaining the last capacity rounds
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]RoundTrace, capacity)}
}

// SetSink streams every subsequent Record (and eval attach) to w as
// one JSON object per line. Pass nil to detach.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	t.sink = w
	t.mu.Unlock()
}

// SetLabel tags subsequent JSONL records with a run label — byzfleet
// uses it to distinguish the points of a sweep in one trace file.
func (t *Tracer) SetLabel(label string) {
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// Record copies rt into the ring (and the sink, when set). rt is the
// caller's scratch and is not retained.
func (t *Tracer) Record(rt *RoundTrace) {
	t.mu.Lock()
	slot := &t.ring[t.total%len(t.ring)]
	t.total++
	missing, flagged, black := slot.Missing, slot.Flagged, slot.Blacklisted
	*slot = *rt
	slot.Missing = append(missing[:0], rt.Missing...)
	slot.Flagged = append(flagged[:0], rt.Flagged...)
	slot.Blacklisted = append(black[:0], rt.Blacklisted...)
	if t.sink != nil {
		t.writeRoundLocked(slot)
	}
	t.mu.Unlock()
}

// AttachEval late-fills the eval span for round (evals run async on a
// snapshot). When the sink is set the eval is also emitted as its own
// "eval" event, since the round's line has already been written.
func (t *Tracer) AttachEval(round int, d time.Duration, loss, acc float64) {
	t.mu.Lock()
	for i := range t.ring {
		if t.ring[i].Round == round && t.slotLive(i) {
			t.ring[i].PhaseNS[PhaseEval] = int64(d)
			break
		}
	}
	if t.sink != nil {
		b := t.buf[:0]
		b = append(b, `{"event":"eval"`...)
		if t.label != "" {
			b = append(b, `,"label":`...)
			b = strconv.AppendQuote(b, t.label)
		}
		b = append(b, `,"round":`...)
		b = strconv.AppendInt(b, int64(round), 10)
		b = append(b, `,"eval_ns":`...)
		b = strconv.AppendInt(b, int64(d), 10)
		b = append(b, `,"loss":`...)
		b = strconv.AppendFloat(b, loss, 'g', -1, 64)
		b = append(b, `,"accuracy":`...)
		b = strconv.AppendFloat(b, acc, 'g', -1, 64)
		b = append(b, "}\n"...)
		t.buf = b
		t.sink.Write(b)
	}
	t.mu.Unlock()
}

// slotLive reports whether ring index i holds a recorded round (vs a
// zero-valued slot before the ring first wraps).
func (t *Tracer) slotLive(i int) bool {
	if t.total >= len(t.ring) {
		return true
	}
	return i < t.total
}

// Total returns the number of rounds ever recorded.
func (t *Tracer) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot appends deep copies of the retained rounds to dst in
// chronological order and returns it.
func (t *Tracer) Snapshot(dst []RoundTrace) []RoundTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > len(t.ring) {
		n = len(t.ring)
	}
	start := t.total - n
	for i := 0; i < n; i++ {
		src := &t.ring[(start+i)%len(t.ring)]
		cp := *src
		cp.Missing = append([]int(nil), src.Missing...)
		cp.Flagged = append([]int(nil), src.Flagged...)
		cp.Blacklisted = append([]int(nil), src.Blacklisted...)
		dst = append(dst, cp)
	}
	return dst
}

// writeRoundLocked emits one "round" JSONL line. Hand-rolled append
// encoding: no reflection, stable field order, and the scratch buffer
// is reused across rounds.
func (t *Tracer) writeRoundLocked(rt *RoundTrace) {
	b := t.buf[:0]
	b = append(b, `{"event":"round"`...)
	if t.label != "" {
		b = append(b, `,"label":`...)
		b = strconv.AppendQuote(b, t.label)
	}
	b = append(b, `,"round":`...)
	b = strconv.AppendInt(b, int64(rt.Round), 10)
	b = append(b, `,"shards":`...)
	b = strconv.AppendInt(b, int64(rt.Shards), 10)
	b = append(b, `,"phases_ns":{`...)
	for p := Phase(0); p < NumPhases; p++ {
		if p > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, phaseNames[p]...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, rt.PhaseNS[p], 10)
	}
	b = append(b, '}')
	b = appendIntField(b, "report_bytes", int64(rt.ReportBytes))
	b = appendIntField(b, "report_raw_bytes", int64(rt.ReportRawBytes))
	b = appendIntField(b, "broadcast_bytes", int64(rt.BroadcastBytes))
	b = appendIntField(b, "distorted_files", int64(rt.DistortedFiles))
	b = appendIntField(b, "degraded_files", int64(rt.DegradedFiles))
	b = appendIntField(b, "dropped_files", int64(rt.DroppedFiles))
	b = appendIntField(b, "rejoins", int64(rt.Rejoins))
	b = appendIntField(b, "evictions", int64(rt.Evictions))
	b = appendIntField(b, "stale_frames", int64(rt.StaleFrames))
	b = append(b, `,"mean_reputation":`...)
	b = strconv.AppendFloat(b, rt.MeanReputation, 'g', -1, 64)
	b = appendIDs(b, "missing", rt.Missing)
	b = appendIDs(b, "flagged", rt.Flagged)
	b = appendIDs(b, "blacklisted", rt.Blacklisted)
	b = append(b, "}\n"...)
	t.buf = b
	t.sink.Write(b)
}

func appendIntField(b []byte, name string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, `":`...)
	return strconv.AppendInt(b, v, 10)
}

func appendIDs(b []byte, name string, ids []int) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, `":[`...)
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return append(b, ']')
}
