package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_rounds_total", "", "rounds")
	g := r.Gauge("test_occupancy", "", "occupancy")
	h := r.Histogram("test_phase_seconds", `phase="vote"`, "vote time", []float64{0.001, 0.01})
	r.CounterFunc("test_live_total", "", "live", func() float64 { return 7 })
	c.Add(3)
	g.Set(0.5)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_rounds_total counter",
		"test_rounds_total 3",
		"test_occupancy 0.5",
		"test_live_total 7",
		`test_phase_seconds_bucket{phase="vote",le="0.001"} 1`,
		`test_phase_seconds_bucket{phase="vote",le="0.01"} 2`,
		`test_phase_seconds_bucket{phase="vote",le="+Inf"} 3`,
		`test_phase_seconds_count{phase="vote"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got != 2.0055 {
		t.Errorf("Sum = %v, want 2.0055", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "", "")
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(&RoundTrace{Round: i, Missing: []int{i}})
	}
	got := tr.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, rt := range got {
		want := 6 + i
		if rt.Round != want {
			t.Errorf("slot %d round = %d, want %d", i, rt.Round, want)
		}
		if len(rt.Missing) != 1 || rt.Missing[0] != want {
			t.Errorf("slot %d missing = %v, want [%d]", i, rt.Missing, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
}

func TestTracerJSONL(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(8)
	tr.SetSink(&b)
	tr.SetLabel("unit")
	rt := RoundTrace{
		Round: 5, Shards: 2,
		ReportBytes: 100, BroadcastBytes: 200,
		Missing: []int{1, 3}, Flagged: []int{2},
		MeanReputation: 0.75,
	}
	rt.PhaseNS[PhaseVote] = 1234
	tr.Record(&rt)
	tr.AttachEval(5, 9*time.Millisecond, 0.5, 0.9)

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var round struct {
		Event   string           `json:"event"`
		Label   string           `json:"label"`
		Round   int              `json:"round"`
		Phases  map[string]int64 `json:"phases_ns"`
		Missing []int            `json:"missing"`
		Rep     float64          `json:"mean_reputation"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &round); err != nil {
		t.Fatalf("round line not JSON: %v\n%s", err, lines[0])
	}
	if round.Event != "round" || round.Label != "unit" || round.Round != 5 {
		t.Errorf("round line = %+v", round)
	}
	if round.Phases["vote"] != 1234 {
		t.Errorf("vote span = %d, want 1234", round.Phases["vote"])
	}
	if len(round.Missing) != 2 || round.Missing[0] != 1 {
		t.Errorf("missing = %v", round.Missing)
	}
	var eval struct {
		Event  string  `json:"event"`
		Round  int     `json:"round"`
		EvalNS int64   `json:"eval_ns"`
		Acc    float64 `json:"accuracy"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &eval); err != nil {
		t.Fatalf("eval line not JSON: %v\n%s", err, lines[1])
	}
	if eval.Event != "eval" || eval.Round != 5 || eval.EvalNS != int64(9*time.Millisecond) || eval.Acc != 0.9 {
		t.Errorf("eval line = %+v", eval)
	}
	// The ring slot picked up the eval span too.
	snap := tr.Snapshot(nil)
	if snap[0].PhaseNS[PhaseEval] != int64(9*time.Millisecond) {
		t.Errorf("ring eval span = %d", snap[0].PhaseNS[PhaseEval])
	}
}

func TestFleetTable(t *testing.T) {
	ft := NewFleetTable(3)
	ft.SetState(1, WorkerLive)
	ft.SetTier(1, 2)
	ft.ObserveRound(1, 7)
	ft.IncRejoins(1)
	ft.SetReputation(1, 0.25)
	ft.Touch(1, time.Now())
	ft.SetState(2, WorkerBlacklisted)

	if ft.State(0) != WorkerUnseen || ft.State(1) != WorkerLive || ft.State(2) != WorkerBlacklisted {
		t.Errorf("states = %v %v %v", ft.State(0), ft.State(1), ft.State(2))
	}
	if ft.LastRound(1) != 7 || ft.Rejoins(1) != 1 || ft.Reputation(1) != 0.25 {
		t.Errorf("row 1 = round %d rejoins %d rep %v", ft.LastRound(1), ft.Rejoins(1), ft.Reputation(1))
	}
	if ft.Reputation(0) != 1 {
		t.Errorf("default reputation = %v, want 1", ft.Reputation(0))
	}
	var b strings.Builder
	if err := ft.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`byzshield_worker_state{worker="1"} 1`,
		`byzshield_worker_state{worker="2"} 3`,
		`byzshield_worker_last_round{worker="1"} 7`,
		`byzshield_worker_rejoins_total{worker="1"} 1`,
		`byzshield_worker_reputation{worker="1"} 0.25`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("fleet exposition missing %q", want)
		}
	}
	b.Reset()
	if err := ft.WriteStatusz(&b, time.Now()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "blacklisted") {
		t.Errorf("statusz table missing blacklisted row:\n%s", b.String())
	}
}

func TestDiagEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("diag_test_total", "", "x").Add(5)
	ft := NewFleetTable(2)
	tr := NewTracer(4)
	tr.Record(&RoundTrace{Round: 0})
	d, err := ListenAndServe("127.0.0.1:0", ServerOptions{Registry: r, Fleet: ft, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "diag_test_total 5") ||
		!strings.Contains(out, `byzshield_worker_state{worker="0"} 0`) {
		t.Errorf("/metrics missing series:\n%s", out)
	}
	if out := get("/healthz"); !strings.Contains(out, "ok") {
		t.Errorf("/healthz = %q", out)
	}
	if out := get("/statusz"); !strings.Contains(out, "fleet:") || !strings.Contains(out, "recent rounds") {
		t.Errorf("/statusz missing sections:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_test_seconds", "", "", ExpBuckets(1e-4, 4, 8))
	c := r.Counter("alloc_test_total", "", "")
	g := r.Gauge("alloc_test_gauge", "", "")
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(0.01)
		c.Inc()
		g.Set(3)
	})
	if allocs != 0 {
		t.Errorf("hot-path instruments allocate %.1f times per round, want 0", allocs)
	}
}

func TestTracerRecordAllocFree(t *testing.T) {
	tr := NewTracer(16)
	rt := RoundTrace{Round: 0, Missing: []int{1, 2}, Flagged: []int{3}}
	// Warm the ring so every slot owns slices at full capacity.
	for i := 0; i < 32; i++ {
		rt.Round = i
		tr.Record(&rt)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Record(&rt)
	})
	if allocs != 0 {
		t.Errorf("steady-state Record allocates %.1f times, want 0", allocs)
	}
}
