// Package obs is the repo's observability plane: a preallocated
// metrics registry (atomic counters, gauges, fixed-bucket histograms),
// a bounded ring-buffer round tracer, a per-worker fleet table, and an
// HTTP diagnostics server exposing them as Prometheus text.
//
// The design constraint is the engine's steady-state allocation budget:
// every instrument is registered once at construction time and handed
// back as a pointer, so the hot path performs no map lookups, no
// interface conversions, and no allocation — an Inc/Set/Observe is one
// or two atomic operations on preallocated state. All formatting cost
// (Prometheus exposition, JSONL traces, the /statusz table) is paid on
// the scrape/sink side, off the round path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Inc/Add are single
// atomic adds; the hot path holds the *Counter directly.
type Counter struct {
	v      atomic.Int64
	labels string
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone; this is not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as raw bits
// so Set/Value are single atomic word operations.
type Gauge struct {
	bits   atomic.Uint64
	labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d with a CAS loop (rarely contended; gauges are typically
// written by one goroutine).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. The bucket layout is decided
// at registration (no dynamic resizing), so Observe is a linear scan
// over a handful of upper bounds plus two atomic adds and a CAS on the
// float sum — no allocation, no locks.
type Histogram struct {
	bounds  []float64      // strictly increasing upper bounds
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
	labels  string
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n upper bounds starting at start, each factor
// times the previous — the standard layout for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// funcGauge is a value read lazily at scrape time. Used where a live
// atomic already exists elsewhere (the transport's lifecycle counters,
// inbox depths): the scrape reads the same source the shutdown summary
// formats, so the two can never disagree.
type funcGauge struct {
	fn     func() float64
	labels string
}

// metricKind is the Prometheus TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its help text, TYPE, and every labeled
// series registered under it.
type family struct {
	name     string
	help     string
	kind     metricKind
	counters []*Counter
	gauges   []*Gauge
	funcs    []funcGauge
	hists    []*Histogram
}

// Registry holds every registered instrument. Registration happens at
// engine/server construction and takes a lock; the returned pointers
// are then used lock-free. Scrapes (WritePrometheus) take the same
// lock, which only ever contends with late registration, never with
// the round hot path.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	seen     map[string]struct{} // name+labels dedup
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]*family),
		seen:   make(map[string]struct{}),
	}
}

// lookup finds or creates the family, panicking on a TYPE conflict or
// duplicate series — both are construction-time bugs, not runtime
// conditions.
func (r *Registry) lookup(name, labels, help string, kind metricKind) *family {
	key := name + "{" + labels + "}"
	if _, dup := r.seen[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %s", key))
	}
	r.seen[key] = struct{}{}
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter registers a counter series. labels is a raw Prometheus label
// fragment like `phase="vote"` (empty for an unlabeled series).
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, labels, help, kindCounter)
	c := &Counter{labels: labels}
	f.counters = append(f.counters, c)
	return c
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, labels, help, kindGauge)
	g := &Gauge{labels: labels}
	f.gauges = append(f.gauges, g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn only at
// scrape time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, labels, help, kindGauge)
	f.funcs = append(f.funcs, funcGauge{fn: fn, labels: labels})
}

// CounterFunc registers a counter whose value is read from fn only at
// scrape time — the bridge for live atomics owned elsewhere (e.g. the
// transport's join/eviction counters).
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, labels, help, kindCounter)
	f.funcs = append(f.funcs, funcGauge{fn: fn, labels: labels})
}

// Histogram registers a fixed-bucket histogram series. bounds must be
// strictly increasing; they are copied.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, labels, help, kindHistogram)
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		labels: labels,
	}
	f.hists = append(f.hists, h)
	return h
}

// wrapLabels renders a label fragment as {a="b"} or "".
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels merges a series label fragment with an extra pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus writes every registered series in the Prometheus
// text exposition format. Allocation here is fine: scrapes run on the
// diagnostics goroutine, not the round path.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.counters {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, wrapLabels(c.labels), c.Value()); err != nil {
				return err
			}
		}
		for _, g := range f.gauges {
			if _, err := fmt.Fprintf(w, "%s%s %v\n", f.name, wrapLabels(g.labels), g.Value()); err != nil {
				return err
			}
		}
		for _, fg := range f.funcs {
			if _, err := fmt.Fprintf(w, "%s%s %v\n", f.name, wrapLabels(fg.labels), fg.fn()); err != nil {
				return err
			}
		}
		for _, h := range f.hists {
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					joinLabels(h.labels, fmt.Sprintf("le=%q", fmtBound(b))), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				joinLabels(h.labels, `le="+Inf"`), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", f.name, wrapLabels(h.labels), h.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, wrapLabels(h.labels), h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// fmtBound renders a bucket bound compactly ("0.001", not "1e-03").
func fmtBound(b float64) string { return fmt.Sprintf("%g", b) }

// Series is one scraped value, for programmatic inspection in tests
// and /statusz.
type Series struct {
	Name   string // family name (histograms expand to _sum/_count/_bucket)
	Labels string
	Value  float64
}

// Gather returns every scalar series (counters, gauges, funcs, and
// histogram _sum/_count) sorted by name then labels.
func (r *Registry) Gather() []Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Series
	for _, f := range r.families {
		for _, c := range f.counters {
			out = append(out, Series{f.name, c.labels, float64(c.Value())})
		}
		for _, g := range f.gauges {
			out = append(out, Series{f.name, g.labels, g.Value()})
		}
		for _, fg := range f.funcs {
			out = append(out, Series{f.name, fg.labels, fg.fn()})
		}
		for _, h := range f.hists {
			out = append(out, Series{f.name + "_sum", h.labels, h.Sum()})
			out = append(out, Series{f.name + "_count", h.labels, float64(h.Count())})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
