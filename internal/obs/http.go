package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerOptions configures the diagnostics endpoint. Every field is
// optional: a nil Registry serves an empty /metrics, a nil Fleet omits
// the per-worker series and the /statusz table.
type ServerOptions struct {
	Registry *Registry
	Fleet    *FleetTable
	Tracer   *Tracer
	// Extra, when set, appends additional Prometheus text to /metrics
	// (the transport uses it for values scoped to the live server).
	Extra func(w http.ResponseWriter)
}

// NewMux builds the diagnostics routes on a fresh mux (never the
// default mux, so importing obs does not pollute global HTTP state):
// /metrics (Prometheus text), /healthz, /statusz (fleet table + recent
// rounds), and /debug/pprof/*.
func NewMux(opts ServerOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opts.Registry != nil {
			opts.Registry.WritePrometheus(w)
		}
		if opts.Fleet != nil {
			opts.Fleet.WritePrometheus(w)
		}
		if opts.Extra != nil {
			opts.Extra(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		now := time.Now()
		fmt.Fprintf(w, "byzshield status — %s\n\n", now.Format(time.RFC3339))
		if opts.Fleet != nil {
			fmt.Fprintln(w, "fleet:")
			opts.Fleet.WriteStatusz(w, now)
			fmt.Fprintln(w)
		}
		if opts.Tracer != nil {
			writeRecentRounds(w, opts.Tracer)
		}
		if opts.Registry != nil {
			fmt.Fprintln(w, "metrics:")
			for _, s := range opts.Registry.Gather() {
				fmt.Fprintf(w, "  %s%s %v\n", s.Name, wrapLabels(s.Labels), s.Value)
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeRecentRounds renders the tracer's retained ring as a table.
func writeRecentRounds(w http.ResponseWriter, t *Tracer) {
	traces := t.Snapshot(nil)
	if len(traces) == 0 {
		return
	}
	fmt.Fprintf(w, "recent rounds (%d retained, %d total):\n", len(traces), t.Total())
	fmt.Fprintf(w, "%6s %10s %10s %10s %10s %10s %8s %8s %8s\n",
		"round", "collect", "vote", "agg", "detect", "eval", "upB", "downB", "missing")
	for i := range traces {
		rt := &traces[i]
		fmt.Fprintf(w, "%6d %10s %10s %10s %10s %10s %8d %8d %8d\n",
			rt.Round,
			time.Duration(rt.PhaseNS[PhaseCollect]).Truncate(time.Microsecond),
			time.Duration(rt.PhaseNS[PhaseVote]).Truncate(time.Microsecond),
			time.Duration(rt.PhaseNS[PhaseAggregate]).Truncate(time.Microsecond),
			time.Duration(rt.PhaseNS[PhaseDetect]).Truncate(time.Microsecond),
			time.Duration(rt.PhaseNS[PhaseEval]).Truncate(time.Microsecond),
			rt.ReportBytes, rt.BroadcastBytes, len(rt.Missing))
	}
	fmt.Fprintln(w)
}

// Diag is a running diagnostics HTTP server.
type Diag struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts the diagnostics server on addr (":0" picks a
// free port — tests use it) and serves until Close.
func ListenAndServe(addr string, opts ServerOptions) (*Diag, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &Diag{ln: ln, srv: &http.Server{Handler: NewMux(opts)}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound address (host:port).
func (d *Diag) Addr() string { return d.ln.Addr().String() }

// Close stops the server and its listener.
func (d *Diag) Close() error { return d.srv.Close() }
