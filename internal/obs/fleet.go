package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// WorkerState is a fleet-table row's connection state.
type WorkerState int32

const (
	// WorkerUnseen: never completed a handshake.
	WorkerUnseen WorkerState = iota
	// WorkerLive: connected and pumping.
	WorkerLive
	// WorkerDown: evicted or disconnected; may rejoin.
	WorkerDown
	// WorkerBlacklisted: token revoked; rejoins are rejected.
	WorkerBlacklisted
)

// String returns the state's display name.
func (s WorkerState) String() string {
	switch s {
	case WorkerLive:
		return "live"
	case WorkerDown:
		return "down"
	case WorkerBlacklisted:
		return "blacklisted"
	default:
		return "unseen"
	}
}

// fleetRow is one worker's live state: every field is an atomic so the
// transport's handshake/eviction/round paths write without locks and
// the scrape side reads a consistent-enough snapshot.
type fleetRow struct {
	state     atomic.Int32
	tier      atomic.Int32
	lastRound atomic.Int64 // last round a report landed; -1 before any
	rejoins   atomic.Int64
	repBits   atomic.Uint64 // reputation as float bits
	lastSeen  atomic.Int64  // unix nanos of last handshake/report
}

// FleetTable is the per-worker status table behind /statusz and the
// per-worker series on /metrics. Rows are preallocated at server
// construction (one per worker id); all updates are single atomic
// stores.
type FleetTable struct {
	rows []fleetRow
	// TierName renders a tier code for display; set by the transport so
	// obs stays independent of the wire package. Nil prints the code.
	TierName func(int32) string
}

// NewFleetTable returns a table with k rows, all unseen, reputation 1.
func NewFleetTable(k int) *FleetTable {
	t := &FleetTable{rows: make([]fleetRow, k)}
	for i := range t.rows {
		t.rows[i].lastRound.Store(-1)
		t.rows[i].repBits.Store(math.Float64bits(1))
	}
	return t
}

// Size returns the number of rows.
func (t *FleetTable) Size() int { return len(t.rows) }

// SetState records worker u's connection state.
func (t *FleetTable) SetState(u int, s WorkerState) { t.rows[u].state.Store(int32(s)) }

// State returns worker u's connection state.
func (t *FleetTable) State(u int) WorkerState { return WorkerState(t.rows[u].state.Load()) }

// SetTier records worker u's negotiated uplink tier code.
func (t *FleetTable) SetTier(u int, tier int32) { t.rows[u].tier.Store(tier) }

// ObserveRound records that worker u participated in round r.
func (t *FleetTable) ObserveRound(u, r int) { t.rows[u].lastRound.Store(int64(r)) }

// LastRound returns the last round worker u participated in (-1 if
// none).
func (t *FleetTable) LastRound(u int) int64 { return t.rows[u].lastRound.Load() }

// IncRejoins counts one successful rejoin for worker u.
func (t *FleetTable) IncRejoins(u int) { t.rows[u].rejoins.Add(1) }

// Rejoins returns worker u's rejoin count.
func (t *FleetTable) Rejoins(u int) int64 { return t.rows[u].rejoins.Load() }

// SetReputation records worker u's current reputation score.
func (t *FleetTable) SetReputation(u int, rep float64) {
	t.rows[u].repBits.Store(math.Float64bits(rep))
}

// Reputation returns worker u's recorded reputation.
func (t *FleetTable) Reputation(u int) float64 {
	return math.Float64frombits(t.rows[u].repBits.Load())
}

// Touch stamps worker u's last-seen time with now.
func (t *FleetTable) Touch(u int, now time.Time) { t.rows[u].lastSeen.Store(now.UnixNano()) }

// tierName renders a tier code.
func (t *FleetTable) tierName(code int32) string {
	if t.TierName != nil {
		return t.TierName(code)
	}
	return fmt.Sprintf("%d", code)
}

// WritePrometheus writes the per-worker series: state, last round,
// rejoins, and reputation, labeled by worker id.
func (t *FleetTable) WritePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP byzshield_worker_state worker connection state (0 unseen, 1 live, 2 down, 3 blacklisted)\n# TYPE byzshield_worker_state gauge\n"); err != nil {
		return err
	}
	for u := range t.rows {
		if _, err := fmt.Fprintf(w, "byzshield_worker_state{worker=\"%d\"} %d\n", u, t.rows[u].state.Load()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP byzshield_worker_last_round last round the worker reported in (-1 before any)\n# TYPE byzshield_worker_last_round gauge\n"); err != nil {
		return err
	}
	for u := range t.rows {
		if _, err := fmt.Fprintf(w, "byzshield_worker_last_round{worker=\"%d\"} %d\n", u, t.rows[u].lastRound.Load()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP byzshield_worker_rejoins_total successful session-token rejoins per worker\n# TYPE byzshield_worker_rejoins_total counter\n"); err != nil {
		return err
	}
	for u := range t.rows {
		if _, err := fmt.Fprintf(w, "byzshield_worker_rejoins_total{worker=\"%d\"} %d\n", u, t.rows[u].rejoins.Load()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP byzshield_worker_reputation detector reputation score per worker\n# TYPE byzshield_worker_reputation gauge\n"); err != nil {
		return err
	}
	for u := range t.rows {
		if _, err := fmt.Fprintf(w, "byzshield_worker_reputation{worker=\"%d\"} %v\n", u, t.Reputation(u)); err != nil {
			return err
		}
	}
	return nil
}

// WriteStatusz writes the human-readable fleet table.
func (t *FleetTable) WriteStatusz(w io.Writer, now time.Time) error {
	if _, err := fmt.Fprintf(w, "%-6s %-12s %-6s %10s %8s %6s %10s\n",
		"worker", "state", "tier", "last_round", "rejoins", "rep", "last_seen"); err != nil {
		return err
	}
	for u := range t.rows {
		r := &t.rows[u]
		seen := "never"
		if ns := r.lastSeen.Load(); ns != 0 {
			seen = now.Sub(time.Unix(0, ns)).Truncate(time.Millisecond).String() + " ago"
		}
		if _, err := fmt.Fprintf(w, "%-6d %-12s %-6s %10d %8d %6.3f %10s\n",
			u, WorkerState(r.state.Load()), t.tierName(r.tier.Load()),
			r.lastRound.Load(), r.rejoins.Load(), t.Reputation(u), seen); err != nil {
			return err
		}
	}
	return nil
}
