// Cross-module integration tests: every attack × defense combination at
// small scale must run end to end without errors and produce sane
// accuracy, and the qualitative robustness relations the paper
// establishes must hold across model architectures.
package byzshield_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"byzshield"
	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/cluster"
	"byzshield/internal/data"
	"byzshield/internal/distort"
	"byzshield/internal/draco"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
)

// TestAttackDefenseGrid runs every attack against every vote-compatible
// defense on the MOLS(5,3) cluster with the worst-case q = 3 adversary.
func TestAttackDefenseGrid(t *testing.T) {
	asn, err := assign.MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	an := distort.NewAnalyzer(asn)
	byz := an.WorstCaseByzantines(context.Background(), 3)
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 600, Test: 200, Dim: 10, Classes: 5, Seed: 77, ClassSep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	attacks := []attack.Attack{
		attack.Benign{},
		attack.ALIE{},
		attack.ALIE{ZOverride: 1},
		attack.Constant{ScaleByFileSize: true},
		attack.Reversed{C: 1},
		attack.Reversed{C: 10},
		attack.RandomGaussian{Scale: 5},
		attack.SignFlip{},
	}
	defenses := []aggregate.Aggregator{
		aggregate.Median{},
		aggregate.TrimmedMean{Trim: 3},
		aggregate.MedianOfMeans{Groups: 5},
		aggregate.MultiKrum{C: 3},
		aggregate.Bulyan{C: 3},
		aggregate.GeometricMedian{},
		aggregate.Auror{Threshold: 1},
	}
	for _, atk := range attacks {
		for _, def := range defenses {
			name := fmt.Sprintf("%s/%s", atk.Name(), def.Name())
			t.Run(name, func(t *testing.T) {
				mdl, err := model.NewSoftmax(10, 5)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := cluster.New(cluster.Config{
					Assignment: asn, Model: mdl, Train: train, Test: test,
					BatchSize: 100, Attack: atk, Byzantines: byz,
					Aggregator: def,
					Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 20},
					Momentum:   0.9, Seed: 9,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				h, err := eng.Run(context.Background(), 40, 40)
				if err != nil {
					t.Fatal(err)
				}
				acc := h.FinalAccuracy()
				if acc < 0.2 {
					// ε̂ = 0.12 with a robust rule should never collapse
					// to chance (0.2 for 5 classes) on this easy task.
					t.Errorf("accuracy %.3f under %s", acc, name)
				}
			})
		}
	}
}

// TestAllModelsTrainUnderAttack runs the full pipeline with each model
// architecture.
func TestAllModelsTrainUnderAttack(t *testing.T) {
	builders := map[string]func() (model.Model, error){
		"softmax": func() (model.Model, error) { return model.NewSoftmax(12, 4) },
		"mlp":     func() (model.Model, error) { return model.NewMLP(12, 16, 4) },
		"convnet": func() (model.Model, error) { return model.NewConvNet(12, 3, 4, 4) },
	}
	asn, err := assign.MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 600, Test: 200, Dim: 12, Classes: 4, Seed: 5, ClassSep: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	an := distort.NewAnalyzer(asn)
	byz := an.WorstCaseByzantines(context.Background(), 3)
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			mdl, err := build()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := cluster.New(cluster.Config{
				Assignment: asn, Model: mdl, Train: train, Test: test,
				BatchSize: 100, Attack: attack.ALIE{ZOverride: 1}, Byzantines: byz,
				Aggregator: aggregate.Median{},
				Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 20},
				Momentum:   0.9, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			h, err := eng.Run(context.Background(), 60, 60)
			if err != nil {
				t.Fatal(err)
			}
			if h.FinalAccuracy() < 0.5 {
				t.Errorf("%s accuracy %.3f under ALIE q=3 with ByzShield", name, h.FinalAccuracy())
			}
		})
	}
}

// TestDRACOVsByzShieldBoundary demonstrates the Sec. 5.3.1 contrast at
// the applicability boundary: with r = 3, DRACO guarantees exact
// recovery only for q ≤ 1; at q = 2 DRACO's guarantee is void (and a
// packed adversary corrupts its decode), while ByzShield's vote +
// median keeps training (ε̂ = 0.04).
func TestDRACOVsByzShieldBoundary(t *testing.T) {
	dr, err := draco.NewCyclic(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.Feasible(1); err != nil {
		t.Errorf("q=1 should be inside DRACO's guarantee: %v", err)
	}
	if err := dr.Feasible(2); err == nil {
		t.Error("q=2 should be outside DRACO's guarantee for r=3")
	}

	// ByzShield at q=2: ε̂ = 1/25, converges.
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := byzshield.SyntheticDataset(600, 200, 10, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := byzshield.NewSoftmaxModel(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := byzshield.Train(byzshield.TrainConfig{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: 100, Q: 2, Attack: byzshield.ReversedGradient(10),
		Iterations: 40, EvalEvery: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalAccuracy() < 0.6 {
		t.Errorf("ByzShield q=2 accuracy %.3f", h.FinalAccuracy())
	}
}

// TestEndToEndCheckpointedTraining exercises snapshot → file → restore
// through the checkpoint package against a live engine.
func TestEndToEndCheckpointedTraining(t *testing.T) {
	asn, err := assign.MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := data.Synthetic(data.SyntheticConfig{
		Train: 400, Test: 100, Dim: 8, Classes: 4, Seed: 13, ClassSep: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *cluster.Engine {
		mdl, err := model.NewSoftmax(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cluster.New(cluster.Config{
			Assignment: asn, Model: mdl, Train: train, Test: test,
			BatchSize: 60, Attack: attack.Reversed{}, Byzantines: []int{0, 7},
			Aggregator: aggregate.Median{},
			Schedule:   trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 20},
			Momentum:   0.9, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return eng
	}
	eng := newEngine()
	for i := 0; i < 6; i++ {
		if _, err := eng.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	params, velocity, iter := eng.Snapshot()

	path := t.TempDir() + "/state.gob"
	if err := saveState(path, params, velocity, iter); err != nil {
		t.Fatal(err)
	}
	p2, v2, it2, err := loadState(path)
	if err != nil {
		t.Fatal(err)
	}
	restored := newEngine()
	for i := 0; i < 6; i++ { // replay RNG streams to the snapshot point
		if _, err := restored.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.Restore(p2, v2, it2); err != nil {
		t.Fatal(err)
	}
	if restored.Iteration() != 6 {
		t.Errorf("restored iteration %d", restored.Iteration())
	}
	if _, err := restored.RunRound(); err != nil {
		t.Fatal(err)
	}
}

func saveState(path string, params, velocity []float64, iter int) error {
	return checkpointSave(path, params, velocity, iter)
}

func loadState(path string) ([]float64, []float64, int, error) {
	return checkpointLoad(path)
}

// TestFacadeDistortionSweepAgainstBounds sweeps q over the facade
// analysis and checks γ dominance plus ε̂ monotonicity.
func TestFacadeDistortionSweepAgainstBounds(t *testing.T) {
	asn, err := byzshield.NewRamanujan2(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for q := 0; q <= 8; q++ {
		rep, err := byzshield.AnalyzeDistortion(asn, q, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rep.CMax < prev {
			t.Errorf("c_max not monotone at q=%d", q)
		}
		prev = rep.CMax
		if q > 0 && float64(rep.CMax) > rep.Gamma+1e-9 {
			t.Errorf("q=%d: c_max %d exceeds γ %.3f", q, rep.CMax, rep.Gamma)
		}
	}
}
